"""Unit tests for fault models."""

import pytest

from repro.beeping.faults import (
    NO_FAULTS,
    ChurnEvent,
    ChurnSchedule,
    CrashSchedule,
    FaultModel,
    parse_churn_spec,
    parse_crash_spec,
)
from repro.graphs.graph import Graph


class TestCrashSchedule:
    def test_empty_by_default(self):
        schedule = CrashSchedule()
        assert schedule.is_empty()
        assert schedule.crashed_at(0) == frozenset()

    def test_from_pairs(self):
        schedule = CrashSchedule.from_pairs([(0, 3), (0, 5), (2, 1)])
        assert schedule.crashed_at(0) == frozenset({3, 5})
        assert schedule.crashed_at(2) == frozenset({1})
        assert schedule.crashed_at(1) == frozenset()
        assert not schedule.is_empty()

    def test_negative_round_rejected(self):
        with pytest.raises(ValueError):
            CrashSchedule.from_pairs([(-1, 0)])

    def test_negative_vertex_rejected(self):
        """A negative id would silently vanish from the vectorised
        engines' masks while the reference scheduler would index with
        it — from_pairs must reject it for every engine."""
        with pytest.raises(ValueError, match="vertex"):
            CrashSchedule.from_pairs([(0, -3)])


class TestFaultModel:
    def test_default_is_fault_free(self):
        assert FaultModel().is_fault_free
        assert NO_FAULTS.is_fault_free

    def test_loss_makes_faulty(self):
        assert not FaultModel(beep_loss_probability=0.1).is_fault_free

    def test_spurious_makes_faulty(self):
        assert not FaultModel(spurious_beep_probability=0.1).is_fault_free

    def test_crashes_make_faulty(self):
        model = FaultModel(
            crash_schedule=CrashSchedule.from_pairs([(1, 0)])
        )
        assert not model.is_fault_free

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultModel(beep_loss_probability=1.5)
        with pytest.raises(ValueError):
            FaultModel(spurious_beep_probability=-0.2)

    def test_frozen(self):
        with pytest.raises(Exception):
            NO_FAULTS.beep_loss_probability = 0.5

    def test_churn_makes_faulty(self):
        model = FaultModel(
            churn_schedule=ChurnSchedule.from_events([("leave", 2, 0)])
        )
        assert not model.is_fault_free
        assert model.has_churn
        assert not NO_FAULTS.has_churn


class TestChurnEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            ChurnEvent("explode", 1, 0)

    def test_rejects_negative_round_and_vertex(self):
        with pytest.raises(ValueError, match="round"):
            ChurnEvent("leave", -1, 0)
        with pytest.raises(ValueError, match="vertex"):
            ChurnEvent("leave", 1, -2)

    def test_only_joins_carry_neighbours(self):
        with pytest.raises(ValueError, match="neighbour list"):
            ChurnEvent("leave", 1, 0, neighbors=(2,))

    def test_join_neighbours_canonicalised(self):
        event = ChurnEvent("join", 3, 10, neighbors=(5, 2, 5))
        assert event.neighbors == (2, 5)
        assert event.to_tuple() == ("join", 3, 10, (2, 5))

    def test_join_rejects_self_loop(self):
        with pytest.raises(ValueError, match="neighbour itself"):
            ChurnEvent("join", 3, 10, neighbors=(10,))


class TestChurnSchedule:
    def test_empty_by_default(self):
        schedule = ChurnSchedule()
        assert schedule.is_empty()
        assert schedule.last_event_round == -1
        assert schedule.event_rounds() == ()

    def test_events_sorted_canonically(self):
        schedule = ChurnSchedule.from_events(
            [("wake", 5, 1), ("sleep", 2, 1), ("leave", 2, 0)]
        )
        assert schedule.to_tuples() == (
            ("leave", 2, 0), ("sleep", 2, 1), ("wake", 5, 1),
        )
        assert schedule.event_rounds() == (2, 5)
        assert schedule.last_event_round == 5

    def test_events_at_always_has_all_kinds(self):
        schedule = ChurnSchedule.from_events([("leave", 2, 0)])
        events = schedule.events_at(2)
        assert set(events) == {"leave", "sleep", "wake", "join"}
        assert events["leave"] == frozenset({0})
        assert events["join"] == frozenset()

    def test_rejects_two_events_same_round_and_vertex(self):
        with pytest.raises(ValueError, match="two churn events"):
            ChurnSchedule.from_events([("sleep", 2, 1), ("leave", 2, 1)])

    def test_rejects_wake_without_sleep(self):
        with pytest.raises(ValueError, match="wake"):
            ChurnSchedule.from_events([("wake", 2, 1)])

    def test_rejects_double_leave(self):
        with pytest.raises(ValueError, match="leaves more than once"):
            ChurnSchedule.from_events([("leave", 2, 1), ("leave", 5, 1)])

    def test_rejects_events_before_join(self):
        with pytest.raises(ValueError, match="before its join"):
            ChurnSchedule.from_events([("sleep", 1, 9), ("join", 4, 9, ())])

    def test_rejects_events_after_leave(self):
        with pytest.raises(ValueError, match="after its leave"):
            ChurnSchedule.from_events([("leave", 2, 1), ("sleep", 4, 1)])

    def test_universe_graph_appends_joiners(self):
        base = Graph(4, [(0, 1), (1, 2), (2, 3)])
        schedule = ChurnSchedule.from_events(
            [("join", 3, 4, (0, 2)), ("join", 5, 5, (4,))]
        )
        universe = schedule.universe_graph(base)
        assert universe.num_vertices == 6
        assert set(universe.neighbors(4)) == {0, 2, 5}
        assert set(universe.neighbors(5)) == {4}

    def test_universe_graph_rejects_non_contiguous_join_ids(self):
        base = Graph(4, [(0, 1)])
        schedule = ChurnSchedule.from_events([("join", 3, 7, ())])
        with pytest.raises(ValueError, match="contiguous block"):
            schedule.universe_graph(base)

    def test_universe_graph_rejects_out_of_range_targets(self):
        base = Graph(4, [(0, 1)])
        schedule = ChurnSchedule.from_events([("leave", 3, 9)])
        with pytest.raises(ValueError, match="outside"):
            schedule.universe_graph(base)


class TestParseCrashSpec:
    def test_parses_pairs(self):
        assert parse_crash_spec(["2:4", "0:1"]) == ((2, 4), (0, 1))

    def test_rejects_malformed(self):
        with pytest.raises(ValueError, match="ROUND:VERTEX"):
            parse_crash_spec(["2"])
        with pytest.raises(ValueError, match="integer"):
            parse_crash_spec(["a:b"])
        with pytest.raises(ValueError, match=">= 0"):
            parse_crash_spec(["2:-1"])


class TestParseChurnSpec:
    def test_parses_grammar(self):
        events = parse_churn_spec(
            ["leave:2:0", "sleep:3:5", "wake:6:5", "join:4:20:0+3+7"]
        )
        assert ("leave", 2, 0) in events
        assert ("join", 4, 20, (0, 3, 7)) in events

    def test_join_may_declare_no_neighbours(self):
        events = parse_churn_spec(["join:4:20:"])
        assert events == (("join", 4, 20, ()),)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="must start with one of"):
            parse_churn_spec(["vanish:2:0"])

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError, match="leave:ROUND:VERTEX"):
            parse_churn_spec(["leave:2"])
        with pytest.raises(ValueError, match="join:ROUND:VERTEX"):
            parse_churn_spec(["join:2:5"])

    def test_rejects_non_integer_fields(self):
        with pytest.raises(ValueError, match="integer"):
            parse_churn_spec(["leave:two:0"])
        with pytest.raises(ValueError, match="integer"):
            parse_churn_spec(["join:2:5:a+b"])

    def test_rejects_incoherent_timeline(self):
        with pytest.raises(ValueError, match="wake"):
            parse_churn_spec(["wake:2:1"])
