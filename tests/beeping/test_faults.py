"""Unit tests for fault models."""

import pytest

from repro.beeping.faults import NO_FAULTS, CrashSchedule, FaultModel


class TestCrashSchedule:
    def test_empty_by_default(self):
        schedule = CrashSchedule()
        assert schedule.is_empty()
        assert schedule.crashed_at(0) == frozenset()

    def test_from_pairs(self):
        schedule = CrashSchedule.from_pairs([(0, 3), (0, 5), (2, 1)])
        assert schedule.crashed_at(0) == frozenset({3, 5})
        assert schedule.crashed_at(2) == frozenset({1})
        assert schedule.crashed_at(1) == frozenset()
        assert not schedule.is_empty()

    def test_negative_round_rejected(self):
        with pytest.raises(ValueError):
            CrashSchedule.from_pairs([(-1, 0)])


class TestFaultModel:
    def test_default_is_fault_free(self):
        assert FaultModel().is_fault_free
        assert NO_FAULTS.is_fault_free

    def test_loss_makes_faulty(self):
        assert not FaultModel(beep_loss_probability=0.1).is_fault_free

    def test_spurious_makes_faulty(self):
        assert not FaultModel(spurious_beep_probability=0.1).is_fault_free

    def test_crashes_make_faulty(self):
        model = FaultModel(
            crash_schedule=CrashSchedule.from_pairs([(1, 0)])
        )
        assert not model.is_fault_free

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultModel(beep_loss_probability=1.5)
        with pytest.raises(ValueError):
            FaultModel(spurious_beep_probability=-0.2)

    def test_frozen(self):
        with pytest.raises(Exception):
            NO_FAULTS.beep_loss_probability = 0.5
