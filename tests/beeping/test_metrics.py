"""Unit tests for simulation metrics."""

from repro.beeping.metrics import RoundRecord, SimulationMetrics


class TestRoundRecord:
    def test_became_inactive(self):
        record = RoundRecord(
            round_index=0,
            active_before=10,
            beeps=4,
            joins=2,
            retirements=5,
        )
        assert record.became_inactive == 7

    def test_crash_default(self):
        record = RoundRecord(0, 5, 1, 0, 0)
        assert record.crashes == 0


class TestSimulationMetrics:
    def test_initial_state(self):
        metrics = SimulationMetrics(4)
        assert metrics.beeps_by_node == [0, 0, 0, 0]
        assert metrics.num_rounds == 0
        assert metrics.total_beeps == 0
        assert metrics.mean_beeps_per_node == 0.0
        assert metrics.max_beeps_per_node == 0

    def test_record_beeps(self):
        metrics = SimulationMetrics(3)
        metrics.record_beeps({0, 2})
        metrics.record_beeps({2})
        assert metrics.beeps_by_node == [1, 0, 2]
        assert metrics.total_beeps == 3
        assert metrics.mean_beeps_per_node == 1.0
        assert metrics.max_beeps_per_node == 2

    def test_record_rounds(self):
        metrics = SimulationMetrics(2)
        metrics.record_round(RoundRecord(0, 2, 1, 0, 0))
        metrics.record_round(RoundRecord(1, 2, 1, 1, 1))
        assert metrics.num_rounds == 2

    def test_empty_graph_mean(self):
        metrics = SimulationMetrics(0)
        assert metrics.mean_beeps_per_node == 0.0
