"""Unit tests for node states and the fixed-probability policy."""

import pytest

from repro.beeping.node import BeepingNode, FixedProbabilityNode, NodeState


class TestNodeState:
    def test_active_is_not_inactive(self):
        assert not NodeState.ACTIVE.is_inactive

    def test_terminal_states_inactive(self):
        assert NodeState.IN_MIS.is_inactive
        assert NodeState.RETIRED.is_inactive

    def test_values_stable(self):
        assert NodeState.ACTIVE.value == "active"
        assert NodeState.IN_MIS.value == "in_mis"
        assert NodeState.RETIRED.value == "retired"


class TestFixedProbabilityNode:
    def test_returns_configured_probability(self):
        node = FixedProbabilityNode(0.3)
        assert node.beep_probability() == 0.3

    def test_observation_is_ignored(self):
        node = FixedProbabilityNode(0.3)
        node.observe_first_exchange(True, True)
        node.observe_first_exchange(False, False)
        assert node.beep_probability() == 0.3

    def test_bounds_enforced(self):
        with pytest.raises(ValueError):
            FixedProbabilityNode(1.5)
        with pytest.raises(ValueError):
            FixedProbabilityNode(-0.1)

    def test_extremes_allowed(self):
        assert FixedProbabilityNode(0.0).beep_probability() == 0.0
        assert FixedProbabilityNode(1.0).beep_probability() == 1.0

    def test_describe(self):
        assert "0.25" in FixedProbabilityNode(0.25).describe()

    def test_default_round_start_is_noop(self):
        node = FixedProbabilityNode(0.5)
        node.on_round_start(17)
        assert node.beep_probability() == 0.5

    def test_abstract_base_not_instantiable(self):
        with pytest.raises(TypeError):
            BeepingNode()
