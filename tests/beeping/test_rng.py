"""Unit and property tests for the seed-derivation discipline."""

from hypothesis import given
from hypothesis import strategies as st

from repro.beeping.rng import (
    DRAW_BEEP,
    DRAW_IDS,
    DRAW_LOSS,
    DRAW_MARK,
    DRAW_SPURIOUS,
    DRAW_VALUE,
    RngStream,
    counter_uniforms,
    counter_values,
    derive_seed,
    derive_seed_block,
    seed_array,
    spawn_rng,
    uniform_block,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, 1, 2, 3) == derive_seed(42, 1, 2, 3)

    def test_path_order_matters(self):
        assert derive_seed(42, 1, 2) != derive_seed(42, 2, 1)

    def test_master_seed_matters(self):
        assert derive_seed(1, 5) != derive_seed(2, 5)

    def test_empty_path(self):
        assert derive_seed(7) == derive_seed(7)
        assert derive_seed(7) != derive_seed(8)

    def test_result_is_64_bit(self):
        for seed in (0, 1, 2**64 - 1, 123456789):
            value = derive_seed(seed, 0)
            assert 0 <= value < 2**64

    def test_negative_indices_allowed(self):
        assert derive_seed(1, -1) != derive_seed(1, 1)


class TestDeriveSeedBlock:
    """The vectorised block must equal the scalar chain bit for bit —
    this is the fleet engine's seed contract."""

    def test_matches_scalar_derivation(self):
        seeds = derive_seed_block(42, 3, count=16)
        assert [int(s) for s in seeds] == [
            derive_seed(42, 3, t) for t in range(16)
        ]

    def test_matches_scalar_with_deep_path(self):
        seeds = derive_seed_block(7, 1, 2, 3, count=5)
        assert [int(s) for s in seeds] == [
            derive_seed(7, 1, 2, 3, t) for t in range(5)
        ]

    def test_matches_scalar_with_empty_path(self):
        seeds = derive_seed_block(99, count=4)
        assert [int(s) for s in seeds] == [derive_seed(99, t) for t in range(4)]

    def test_negative_path_elements(self):
        seeds = derive_seed_block(5, -2, count=3)
        assert [int(s) for s in seeds] == [
            derive_seed(5, -2, t) for t in range(3)
        ]

    def test_dtype_and_range(self):
        seeds = derive_seed_block(0, count=8)
        assert str(seeds.dtype) == "uint64"
        assert all(0 <= int(s) < 2**64 for s in seeds)

    def test_empty_block(self):
        assert len(derive_seed_block(1, 2, count=0)) == 0

    def test_rejects_negative_count(self):
        import pytest

        with pytest.raises(ValueError, match="count"):
            derive_seed_block(1, count=-1)

    def test_rejects_negative_start(self):
        import pytest

        with pytest.raises(ValueError, match="start"):
            derive_seed_block(1, count=2, start=-1)


class TestShardBoundaries:
    """The sweep orchestrator's seed contract: a block split across shard
    offsets must equal the unsharded block bit for bit, so a sharded sweep
    consumes exactly the seeds the sequential loop would."""

    def test_offset_block_matches_unsharded_slice(self):
        whole = derive_seed_block(42, 5, count=100)
        shard = derive_seed_block(42, 5, count=30, start=40)
        assert [int(s) for s in shard] == [int(s) for s in whole[40:70]]

    def test_partition_concatenates_to_whole_block(self):
        import numpy as np

        whole = derive_seed_block(1303, 2, 1, count=64)
        parts = [
            derive_seed_block(1303, 2, 1, count=hi - lo, start=lo)
            for lo, hi in ((0, 7), (7, 32), (32, 33), (33, 64))
        ]
        assert np.array_equal(np.concatenate(parts), whole)

    def test_offset_entries_match_scalar_derivation(self):
        shard = derive_seed_block(7, 3, count=5, start=11)
        assert [int(s) for s in shard] == [
            derive_seed(7, 3, 11 + t) for t in range(5)
        ]

    def test_shard_width_one_matches_scalar(self):
        for t in (0, 1, 63, 1000):
            block = derive_seed_block(9, count=1, start=t)
            assert int(block[0]) == derive_seed(9, t)


class TestCounterUniforms:
    """The stateless uniform fabric: pure, shaped, and well distributed."""

    def test_deterministic_and_shaped(self):
        import numpy as np

        a = counter_uniforms([3, 4], 7, DRAW_BEEP, 5)
        b = counter_uniforms([3, 4], 7, DRAW_BEEP, 5)
        assert a.shape == (2, 5)
        assert a.dtype == np.float64
        assert np.array_equal(a, b)

    def test_scalar_seed_gives_one_row(self):
        import numpy as np

        block = counter_uniforms([9, 10], 2, DRAW_BEEP, 6)
        row = counter_uniforms(10, 2, DRAW_BEEP, 6)
        assert row.shape == (6,)
        assert np.array_equal(row, block[1])

    def test_matrix_seeds_give_matrix_blocks(self):
        """The armada's (trials, graphs) seed matrices broadcast: entry
        (t, g) equals the scalar call for that seed."""
        import numpy as np

        seeds = np.arange(6, dtype=np.uint64).reshape(2, 3)
        block = counter_uniforms(seeds, 4, DRAW_BEEP, 5)
        assert block.shape == (2, 3, 5)
        for t in range(2):
            for g in range(3):
                assert np.array_equal(
                    block[t, g],
                    counter_uniforms(int(seeds[t, g]), 4, DRAW_BEEP, 5),
                )

    def test_rounds_kinds_and_seeds_are_independent_axes(self):
        import numpy as np

        base = counter_uniforms(5, 0, DRAW_BEEP, 8)
        assert not np.array_equal(base, counter_uniforms(6, 0, DRAW_BEEP, 8))
        assert not np.array_equal(base, counter_uniforms(5, 1, DRAW_BEEP, 8))
        assert not np.array_equal(base, counter_uniforms(5, 0, DRAW_LOSS, 8))
        assert not np.array_equal(
            base, counter_uniforms(5, 0, DRAW_SPURIOUS, 8)
        )

    def test_range_is_half_open_unit_interval(self):
        block = counter_uniforms(range(64), 3, DRAW_BEEP, 128)
        assert float(block.min()) >= 0.0
        assert float(block.max()) < 1.0

    def test_mean_and_ks_smoke(self):
        """Statistical sanity: 50k counter uniforms look uniform — mean
        and variance near 1/2 and 1/12, and the empirical CDF within a
        comfortable Kolmogorov-Smirnov band (~5x the 1% critical value)."""
        import numpy as np

        sample = counter_uniforms(range(100), 11, DRAW_BEEP, 500).ravel()
        assert abs(float(sample.mean()) - 0.5) < 0.01
        assert abs(float(sample.var()) - 1.0 / 12.0) < 0.01
        sorted_sample = np.sort(sample)
        grid = (np.arange(sample.size) + 1.0) / sample.size
        ks = float(np.abs(sorted_sample - grid).max())
        assert ks < 5.0 * 1.63 / np.sqrt(sample.size)

    def test_overflow_safe_for_huge_counters(self):
        """Rounds, kinds and seeds absorb modulo 2**64 — no Python-int
        leakage, no numpy overflow errors, still uniform-range output."""
        block = counter_uniforms(
            [2**64 - 1, 2**63], 2**63 + 12345, 2**62, 16
        )
        assert block.shape == (2, 16)
        assert float(block.min()) >= 0.0
        assert float(block.max()) < 1.0
        # And huge counters do not degenerate to a constant stream.
        assert len({float(v) for v in block.ravel()}) > 8

    def test_rejects_negative_n(self):
        import pytest

        with pytest.raises(ValueError, match="n"):
            counter_uniforms(1, 0, DRAW_BEEP, -1)

    def test_n_zero_gives_empty_rows(self):
        assert counter_uniforms([1, 2], 0, DRAW_BEEP, 0).shape == (2, 0)


class TestCounterValues:
    """The 64-bit value fabric the message-passing kernels draw from."""

    def test_locked_to_uniforms(self):
        """values >> 11 scaled by 2^-53 IS counter_uniforms, bit for bit."""
        import numpy as np

        values = counter_values([3, 4, 5], 7, DRAW_VALUE, 6)
        uniforms = counter_uniforms([3, 4, 5], 7, DRAW_VALUE, 6)
        assert values.dtype == np.uint64
        assert np.array_equal(
            (values >> np.uint64(11)) * 2.0 ** -53, uniforms
        )

    def test_draw_kinds_are_disjoint_domains(self):
        """The message kinds never collide with each other or with the
        beeping kinds on any shared (seed, round)."""
        import numpy as np

        kinds = (DRAW_BEEP, DRAW_LOSS, DRAW_SPURIOUS, DRAW_VALUE,
                 DRAW_MARK, DRAW_IDS)
        assert len(set(kinds)) == len(kinds)
        blocks = [counter_values([11, 12], 3, kind, 8) for kind in kinds]
        for i, a in enumerate(blocks):
            for b in blocks[i + 1:]:
                assert not np.array_equal(a, b)

    def test_subsets_match_full_block(self):
        import numpy as np

        full = counter_values([5, 6, 7], 9, DRAW_VALUE, 4)
        part = counter_values([6], 9, DRAW_VALUE, 4)
        assert np.array_equal(part[0], full[1])

    def test_rejects_negative_n(self):
        import pytest

        with pytest.raises(ValueError, match="n must be"):
            counter_values([1], 0, DRAW_VALUE, -1)


class TestUniformBlock:
    """The fleet-facing block API over derived trial seeds."""

    def test_rows_match_scalar_counter_streams(self):
        import numpy as np

        block = uniform_block(
            42, 3, round_index=5, draw_kind=DRAW_BEEP, count=8, n=6
        )
        assert block.shape == (8, 6)
        for t in range(8):
            assert np.array_equal(
                block[t],
                counter_uniforms(derive_seed(42, 3, t), 5, DRAW_BEEP, 6),
            )

    def test_shard_windows_equal_slices_of_the_full_block(self):
        """The sweep contract carries over to uniforms: offset windows
        are bit-identical to slices of the unsharded block."""
        import numpy as np

        whole = uniform_block(
            1303, 2, 1, round_index=9, draw_kind=DRAW_LOSS, count=64, n=10
        )
        for lo, hi in ((0, 7), (7, 32), (32, 33), (33, 64)):
            shard = uniform_block(
                1303, 2, 1, round_index=9, draw_kind=DRAW_LOSS,
                count=hi - lo, n=10, start=lo,
            )
            assert np.array_equal(shard, whole[lo:hi])

    def test_overflow_safe_for_large_start(self):
        import numpy as np

        block = uniform_block(
            7, round_index=2**63, draw_kind=DRAW_SPURIOUS,
            count=4, n=3, start=2**40,
        )
        assert block.shape == (4, 3)
        assert float(block.min()) >= 0.0
        assert float(block.max()) < 1.0
        again = uniform_block(
            7, round_index=2**63, draw_kind=DRAW_SPURIOUS,
            count=4, n=3, start=2**40,
        )
        assert np.array_equal(block, again)


class TestSeedArray:
    def test_uint64_passthrough_and_int_wrapping(self):
        import numpy as np

        block = derive_seed_block(1, count=3)
        assert seed_array(block) is block
        assert seed_array(np.int64(-1)) == np.uint64(2**64 - 1)

    def test_python_ints_above_2_63(self):
        import numpy as np

        arr = seed_array([2**64 - 1, 2**63 + 5, 1])
        assert arr.dtype == np.uint64
        assert [int(v) for v in arr] == [2**64 - 1, 2**63 + 5, 1]


class TestSpawnRng:
    def test_same_path_same_stream(self):
        a = spawn_rng(9, 3, 1)
        b = spawn_rng(9, 3, 1)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_paths_differ(self):
        a = spawn_rng(9, 0)
        b = spawn_rng(9, 1)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


class TestRngStream:
    def test_children_reproducible(self):
        stream = RngStream(11)
        assert stream.child(4).random() == RngStream(11).child(4).random()

    def test_child_seed_matches_derive(self):
        stream = RngStream(11)
        assert stream.child_seed(2, 3) == derive_seed(11, 2, 3)

    def test_trial_rngs_count(self):
        stream = RngStream(5)
        rngs = list(stream.trial_rngs(7))
        assert len(rngs) == 7
        values = [r.random() for r in rngs]
        assert len(set(values)) == 7

    def test_master_seed_masked(self):
        stream = RngStream(2**70 + 3)
        assert stream.master_seed == (2**70 + 3) % 2**64


@given(
    st.integers(min_value=0, max_value=2**64 - 1),
    st.lists(st.integers(min_value=0, max_value=2**32), max_size=4),
)
def test_derivation_always_in_range(master, path):
    assert 0 <= derive_seed(master, *path) < 2**64


@given(st.integers(min_value=0, max_value=2**32))
def test_sibling_seeds_distinct(master):
    seeds = {derive_seed(master, i) for i in range(64)}
    assert len(seeds) == 64
