"""Unit and property tests for the seed-derivation discipline."""

from hypothesis import given
from hypothesis import strategies as st

from repro.beeping.rng import (
    RngStream,
    derive_seed,
    derive_seed_block,
    spawn_rng,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, 1, 2, 3) == derive_seed(42, 1, 2, 3)

    def test_path_order_matters(self):
        assert derive_seed(42, 1, 2) != derive_seed(42, 2, 1)

    def test_master_seed_matters(self):
        assert derive_seed(1, 5) != derive_seed(2, 5)

    def test_empty_path(self):
        assert derive_seed(7) == derive_seed(7)
        assert derive_seed(7) != derive_seed(8)

    def test_result_is_64_bit(self):
        for seed in (0, 1, 2**64 - 1, 123456789):
            value = derive_seed(seed, 0)
            assert 0 <= value < 2**64

    def test_negative_indices_allowed(self):
        assert derive_seed(1, -1) != derive_seed(1, 1)


class TestDeriveSeedBlock:
    """The vectorised block must equal the scalar chain bit for bit —
    this is the fleet engine's seed contract."""

    def test_matches_scalar_derivation(self):
        seeds = derive_seed_block(42, 3, count=16)
        assert [int(s) for s in seeds] == [
            derive_seed(42, 3, t) for t in range(16)
        ]

    def test_matches_scalar_with_deep_path(self):
        seeds = derive_seed_block(7, 1, 2, 3, count=5)
        assert [int(s) for s in seeds] == [
            derive_seed(7, 1, 2, 3, t) for t in range(5)
        ]

    def test_matches_scalar_with_empty_path(self):
        seeds = derive_seed_block(99, count=4)
        assert [int(s) for s in seeds] == [derive_seed(99, t) for t in range(4)]

    def test_negative_path_elements(self):
        seeds = derive_seed_block(5, -2, count=3)
        assert [int(s) for s in seeds] == [
            derive_seed(5, -2, t) for t in range(3)
        ]

    def test_dtype_and_range(self):
        seeds = derive_seed_block(0, count=8)
        assert str(seeds.dtype) == "uint64"
        assert all(0 <= int(s) < 2**64 for s in seeds)

    def test_empty_block(self):
        assert len(derive_seed_block(1, 2, count=0)) == 0

    def test_rejects_negative_count(self):
        import pytest

        with pytest.raises(ValueError, match="count"):
            derive_seed_block(1, count=-1)

    def test_rejects_negative_start(self):
        import pytest

        with pytest.raises(ValueError, match="start"):
            derive_seed_block(1, count=2, start=-1)


class TestShardBoundaries:
    """The sweep orchestrator's seed contract: a block split across shard
    offsets must equal the unsharded block bit for bit, so a sharded sweep
    consumes exactly the seeds the sequential loop would."""

    def test_offset_block_matches_unsharded_slice(self):
        whole = derive_seed_block(42, 5, count=100)
        shard = derive_seed_block(42, 5, count=30, start=40)
        assert [int(s) for s in shard] == [int(s) for s in whole[40:70]]

    def test_partition_concatenates_to_whole_block(self):
        import numpy as np

        whole = derive_seed_block(1303, 2, 1, count=64)
        parts = [
            derive_seed_block(1303, 2, 1, count=hi - lo, start=lo)
            for lo, hi in ((0, 7), (7, 32), (32, 33), (33, 64))
        ]
        assert np.array_equal(np.concatenate(parts), whole)

    def test_offset_entries_match_scalar_derivation(self):
        shard = derive_seed_block(7, 3, count=5, start=11)
        assert [int(s) for s in shard] == [
            derive_seed(7, 3, 11 + t) for t in range(5)
        ]

    def test_shard_width_one_matches_scalar(self):
        for t in (0, 1, 63, 1000):
            block = derive_seed_block(9, count=1, start=t)
            assert int(block[0]) == derive_seed(9, t)


class TestSpawnRng:
    def test_same_path_same_stream(self):
        a = spawn_rng(9, 3, 1)
        b = spawn_rng(9, 3, 1)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_paths_differ(self):
        a = spawn_rng(9, 0)
        b = spawn_rng(9, 1)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


class TestRngStream:
    def test_children_reproducible(self):
        stream = RngStream(11)
        assert stream.child(4).random() == RngStream(11).child(4).random()

    def test_child_seed_matches_derive(self):
        stream = RngStream(11)
        assert stream.child_seed(2, 3) == derive_seed(11, 2, 3)

    def test_trial_rngs_count(self):
        stream = RngStream(5)
        rngs = list(stream.trial_rngs(7))
        assert len(rngs) == 7
        values = [r.random() for r in rngs]
        assert len(set(values)) == 7

    def test_master_seed_masked(self):
        stream = RngStream(2**70 + 3)
        assert stream.master_seed == (2**70 + 3) % 2**64


@given(
    st.integers(min_value=0, max_value=2**64 - 1),
    st.lists(st.integers(min_value=0, max_value=2**32), max_size=4),
)
def test_derivation_always_in_range(master, path):
    assert 0 <= derive_seed(master, *path) < 2**64


@given(st.integers(min_value=0, max_value=2**32))
def test_sibling_seeds_distinct(master):
    seeds = {derive_seed(master, i) for i in range(64)}
    assert len(seeds) == 64
