"""Unit and property tests for the beeping round scheduler."""

from random import Random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.beeping.events import Trace
from repro.beeping.node import BeepingNode, FixedProbabilityNode, NodeState
from repro.beeping.scheduler import BeepingSimulation, TerminationError
from repro.core.policy import ExponentFeedbackNode
from repro.graphs.graph import Graph
from repro.graphs.random_graphs import gnp_random_graph
from repro.graphs.structured import complete_graph, empty_graph, path_graph


def feedback_factory(vertex):
    return ExponentFeedbackNode()


def always_beep_factory(vertex):
    return FixedProbabilityNode(1.0)


def never_beep_factory(vertex):
    return FixedProbabilityNode(0.0)


class TestBasicSemantics:
    def test_empty_graph_terminates_immediately(self):
        sim = BeepingSimulation(empty_graph(0), feedback_factory, Random(1))
        result = sim.run()
        assert result.num_rounds == 0
        assert result.mis == set()

    def test_isolated_vertices_all_join(self):
        sim = BeepingSimulation(empty_graph(5), feedback_factory, Random(1))
        result = sim.run()
        assert result.mis == {0, 1, 2, 3, 4}
        result.verify()

    def test_single_edge_picks_one_endpoint(self):
        sim = BeepingSimulation(
            Graph(2, [(0, 1)]), feedback_factory, Random(3)
        )
        result = sim.run()
        assert len(result.mis) == 1
        result.verify()

    def test_all_beeping_complete_graph_never_progresses_then_bounded(self):
        # With p=1 on K_n every round everyone beeps and hears: no joins.
        sim = BeepingSimulation(
            complete_graph(4), always_beep_factory, Random(1), max_rounds=10
        )
        with pytest.raises(TerminationError):
            sim.run()

    def test_never_beeping_nodes_never_terminate(self):
        sim = BeepingSimulation(
            path_graph(3), never_beep_factory, Random(1), max_rounds=5
        )
        with pytest.raises(TerminationError):
            sim.run()

    def test_max_rounds_validation(self):
        with pytest.raises(ValueError):
            BeepingSimulation(
                empty_graph(1), feedback_factory, Random(1), max_rounds=0
            )

    def test_bad_probability_rejected(self):
        class BadNode(BeepingNode):
            def beep_probability(self):
                return 1.5

            def observe_first_exchange(self, did_beep, heard_beep):
                pass

        sim = BeepingSimulation(empty_graph(1), lambda v: BadNode(), Random(1))
        with pytest.raises(ValueError, match="outside"):
            sim.run()


class TestJoinRetireRules:
    def test_lone_beeper_joins_neighbors_retire(self):
        # Star: hub 0 beeps always, leaves never.
        def factory(vertex):
            return FixedProbabilityNode(1.0 if vertex == 0 else 0.0)

        graph = Graph(4, [(0, 1), (0, 2), (0, 3)])
        sim = BeepingSimulation(graph, factory, Random(1))
        result = sim.run()
        assert result.mis == {0}
        assert result.num_rounds == 1
        assert result.states[1] is NodeState.RETIRED

    def test_contending_beepers_block_each_other(self):
        sim = BeepingSimulation(
            Graph(2, [(0, 1)]), always_beep_factory, Random(1), max_rounds=3
        )
        with pytest.raises(TerminationError):
            sim.run()
        # Both still active: mutual beeps suppress joining forever.
        assert sim.active_vertices() == [0, 1]

    def test_distant_beepers_join_same_round(self):
        # Path 0-1-2-3: 0 and 3 beep, 1 and 2 silent.
        def factory(vertex):
            return FixedProbabilityNode(1.0 if vertex in (0, 3) else 0.0)

        sim = BeepingSimulation(path_graph(4), factory, Random(1))
        result = sim.run()
        assert result.mis == {0, 3}
        assert result.num_rounds == 1

    def test_second_neighborhood_unaffected(self):
        # Path 0-1-2: only 0 beeps; 2 must stay active (then join later).
        class OnlyZeroFirstRound(BeepingNode):
            def __init__(self, vertex):
                self._vertex = vertex

            def beep_probability(self):
                return 1.0 if self._vertex == 0 else 0.0

            def observe_first_exchange(self, did_beep, heard_beep):
                pass

        sim = BeepingSimulation(
            path_graph(3), OnlyZeroFirstRound, Random(1), max_rounds=2
        )
        record = sim.step()
        assert record.joins == 1
        assert record.retirements == 1
        assert sim.active_vertices() == [2]


class TestResultAccounting:
    def test_metrics_consistency(self, random50):
        sim = BeepingSimulation(random50, feedback_factory, Random(5))
        result = sim.run()
        result.verify()
        metrics = result.metrics
        assert metrics.num_rounds == result.num_rounds
        total_inactive = sum(
            r.joins + r.retirements for r in metrics.round_records
        )
        assert total_inactive == random50.num_vertices
        assert metrics.total_beeps == sum(metrics.beeps_by_node)

    def test_bits_per_channel(self):
        def factory(vertex):
            return FixedProbabilityNode(1.0 if vertex == 0 else 0.0)

        graph = Graph(3, [(0, 1), (0, 2)])
        sim = BeepingSimulation(graph, factory, Random(1))
        result = sim.run()
        # One beep by vertex 0 over 2 channels / 2 edges = 1 bit/channel.
        assert result.bits_per_channel() == pytest.approx(1.0)

    def test_bits_per_channel_empty(self):
        sim = BeepingSimulation(empty_graph(2), feedback_factory, Random(1))
        assert sim.run().bits_per_channel() == 0.0

    def test_mean_beeps(self, random50):
        result = BeepingSimulation(
            random50, feedback_factory, Random(6)
        ).run()
        assert result.mean_beeps_per_node == pytest.approx(
            result.metrics.total_beeps / 50
        )


class TestDeterminism:
    def test_same_seed_same_result(self, random50):
        a = BeepingSimulation(random50, feedback_factory, Random(9)).run()
        b = BeepingSimulation(random50, feedback_factory, Random(9)).run()
        assert a.mis == b.mis
        assert a.num_rounds == b.num_rounds
        assert a.metrics.beeps_by_node == b.metrics.beeps_by_node

    def test_different_seeds_differ(self, random50):
        a = BeepingSimulation(random50, feedback_factory, Random(1)).run()
        b = BeepingSimulation(random50, feedback_factory, Random(2)).run()
        assert a.mis != b.mis or a.num_rounds != b.num_rounds


class TestTraceRecording:
    def test_trace_rounds_match(self, random50):
        trace = Trace()
        result = BeepingSimulation(
            random50, feedback_factory, Random(4), trace=trace
        ).run()
        assert trace.num_rounds == result.num_rounds
        joined_in_trace = set()
        for event in trace.rounds:
            joined_in_trace |= event.joined
        assert joined_in_trace == result.mis

    def test_trace_probabilities_recorded(self, p4):
        trace = Trace(record_probabilities=True)
        BeepingSimulation(p4, feedback_factory, Random(4), trace=trace).run()
        first = trace.rounds[0]
        assert first.probabilities is not None
        assert dict(first.probabilities) == {0: 0.5, 1: 0.5, 2: 0.5, 3: 0.5}

    def test_trace_beeps_match_metrics(self, random50):
        trace = Trace()
        result = BeepingSimulation(
            random50, feedback_factory, Random(8), trace=trace
        ).run()
        for v in random50.vertices():
            assert len(trace.beeps_of(v)) == result.metrics.beeps_by_node[v]

    def test_retirement_causes_are_joined_neighbors(self, random50):
        trace = Trace()
        BeepingSimulation(
            random50, feedback_factory, Random(3), trace=trace
        ).run()
        join_rounds = {e.vertex: e.round_index for e in trace.joins}
        for retirement in trace.retirements:
            assert join_rounds[retirement.cause] == retirement.round_index
            assert random50.has_edge(retirement.vertex, retirement.cause)


class TestStepwiseExecution:
    def test_step_advances_round_index(self, p4):
        sim = BeepingSimulation(p4, feedback_factory, Random(1))
        assert sim.round_index == 0
        sim.step()
        assert sim.round_index == 1

    def test_node_accessor(self, p4):
        sim = BeepingSimulation(p4, feedback_factory, Random(1))
        assert isinstance(sim.node(2), ExponentFeedbackNode)

    def test_is_terminated_flag(self):
        sim = BeepingSimulation(empty_graph(1), feedback_factory, Random(1))
        assert not sim.is_terminated
        sim.step()
        assert sim.is_terminated


@given(
    st.integers(min_value=1, max_value=20),
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=40, deadline=None)
def test_feedback_always_yields_mis(n, p, seed):
    graph = gnp_random_graph(n, p, Random(seed))
    result = BeepingSimulation(
        graph, feedback_factory, Random(seed ^ 0x5EED), max_rounds=20_000
    ).run()
    result.verify()
