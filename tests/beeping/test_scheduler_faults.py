"""Scheduler behaviour under injected faults."""

from random import Random

import pytest

from repro.beeping.faults import CrashSchedule, FaultModel
from repro.beeping.scheduler import BeepingSimulation
from repro.core.policy import ExponentFeedbackNode
from repro.graphs.graph import Graph
from repro.graphs.random_graphs import gnp_random_graph
from repro.graphs.structured import path_graph, star_graph


def feedback_factory(vertex):
    return ExponentFeedbackNode()


class TestNoiseRobustness:
    @pytest.mark.parametrize("loss", [0.1, 0.3])
    def test_beep_loss_output_still_mis(self, loss):
        graph = gnp_random_graph(40, 0.3, Random(11))
        faults = FaultModel(beep_loss_probability=loss)
        result = BeepingSimulation(
            graph, feedback_factory, Random(12), faults=faults
        ).run()
        result.verify()

    @pytest.mark.parametrize("spurious", [0.1, 0.3])
    def test_spurious_beeps_output_still_mis(self, spurious):
        graph = gnp_random_graph(40, 0.3, Random(13))
        faults = FaultModel(spurious_beep_probability=spurious)
        result = BeepingSimulation(
            graph, feedback_factory, Random(14), faults=faults
        ).run()
        result.verify()

    def test_combined_noise(self):
        graph = gnp_random_graph(40, 0.3, Random(15))
        faults = FaultModel(
            beep_loss_probability=0.2, spurious_beep_probability=0.2
        )
        result = BeepingSimulation(
            graph, feedback_factory, Random(16), faults=faults
        ).run()
        result.verify()

    def test_noise_slows_but_terminates(self):
        graph = gnp_random_graph(30, 0.5, Random(17))
        clean_rounds = []
        noisy_rounds = []
        for seed in range(10):
            clean = BeepingSimulation(
                graph, feedback_factory, Random(seed)
            ).run()
            noisy = BeepingSimulation(
                graph,
                feedback_factory,
                Random(seed),
                faults=FaultModel(spurious_beep_probability=0.5),
            ).run()
            noisy.verify()
            clean_rounds.append(clean.num_rounds)
            noisy_rounds.append(noisy.num_rounds)
        # Spurious beeps suppress probability growth: slower on average.
        assert sum(noisy_rounds) / 10 > sum(clean_rounds) / 10


class TestCrashes:
    def test_crashed_vertex_never_joins(self):
        schedule = CrashSchedule.from_pairs([(0, 0)])
        graph = star_graph(3)
        result = BeepingSimulation(
            graph,
            feedback_factory,
            Random(19),
            faults=FaultModel(crash_schedule=schedule),
        ).run()
        assert 0 not in result.mis
        assert 0 in result.crashed
        result.verify()
        # With the hub gone, all leaves are independent and must join.
        assert result.mis == {1, 2, 3}

    def test_crash_midway(self):
        graph = path_graph(5)
        schedule = CrashSchedule.from_pairs([(2, 2)])
        result = BeepingSimulation(
            graph,
            feedback_factory,
            Random(20),
            faults=FaultModel(crash_schedule=schedule),
        ).run()
        result.verify()

    def test_crash_of_already_inactive_vertex_is_noop(self):
        graph = Graph(2, [(0, 1)])
        # Crash far in the future; both will be inactive by then.
        schedule = CrashSchedule.from_pairs([(90_000, 0)])
        result = BeepingSimulation(
            graph,
            feedback_factory,
            Random(21),
            faults=FaultModel(crash_schedule=schedule),
        ).run()
        assert result.crashed == set()
        result.verify()

    def test_all_crash_terminates_empty(self):
        graph = path_graph(3)
        schedule = CrashSchedule.from_pairs([(0, 0), (0, 1), (0, 2)])
        result = BeepingSimulation(
            graph,
            feedback_factory,
            Random(22),
            faults=FaultModel(crash_schedule=schedule),
        ).run()
        assert result.mis == set()
        assert result.crashed == {0, 1, 2}
        result.verify()

    def test_crash_round_recorded(self):
        graph = path_graph(4)
        schedule = CrashSchedule.from_pairs([(0, 1)])
        sim = BeepingSimulation(
            graph,
            feedback_factory,
            Random(23),
            faults=FaultModel(crash_schedule=schedule),
        )
        record = sim.step()
        assert record.crashes == 1
