"""Tests for trace JSONL serialisation."""

import io
from random import Random

import pytest

from repro.beeping.events import Trace
from repro.beeping.scheduler import BeepingSimulation
from repro.beeping.trace_io import read_trace, write_trace
from repro.core.policy import ExponentFeedbackNode
from repro.graphs.random_graphs import gnp_random_graph


def traced_run(record_probabilities):
    graph = gnp_random_graph(25, 0.4, Random(3))
    trace = Trace(record_probabilities=record_probabilities)
    BeepingSimulation(
        graph, lambda v: ExponentFeedbackNode(), Random(4), trace=trace
    ).run()
    return graph, trace


class TestRoundTrip:
    @pytest.mark.parametrize("record_probabilities", [False, True])
    def test_stream_round_trip(self, record_probabilities):
        _graph, trace = traced_run(record_probabilities)
        buffer = io.StringIO()
        write_trace(trace, buffer)
        buffer.seek(0)
        restored = read_trace(buffer)
        assert restored.num_rounds == trace.num_rounds
        assert restored.record_probabilities == trace.record_probabilities
        assert restored.rounds == trace.rounds
        assert restored.joins == trace.joins
        assert restored.retirements == trace.retirements

    def test_file_round_trip(self, tmp_path):
        _graph, trace = traced_run(True)
        path = tmp_path / "trace.jsonl"
        write_trace(trace, path)
        restored = read_trace(path)
        assert restored.rounds == trace.rounds

    def test_instrumentation_works_on_restored_trace(self):
        from repro.core.instrumentation import classify_vertex_rounds

        graph, trace = traced_run(True)
        buffer = io.StringIO()
        write_trace(trace, buffer)
        buffer.seek(0)
        restored = read_trace(buffer)
        original = classify_vertex_rounds(graph, trace, 0)
        replayed = classify_vertex_rounds(graph, restored, 0)
        assert original == replayed


class TestSeededRoundTrip:
    """Write→read must be lossless for any seeded simulation trace."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_lossless_across_seeds(self, seed):
        from repro.beeping.rng import spawn_rng

        graph = gnp_random_graph(20, 0.35, spawn_rng(seed, 0))
        trace = Trace(record_probabilities=True)
        BeepingSimulation(
            graph,
            lambda v: ExponentFeedbackNode(),
            spawn_rng(seed, 1),
            trace=trace,
        ).run()
        buffer = io.StringIO()
        write_trace(trace, buffer)
        buffer.seek(0)
        restored = read_trace(buffer)
        assert restored.num_rounds == trace.num_rounds
        assert restored.record_probabilities == trace.record_probabilities
        assert restored.rounds == trace.rounds
        assert restored.joins == trace.joins
        assert restored.retirements == trace.retirements

    def test_write_is_deterministic(self):
        _graph, trace = traced_run(True)
        first, second = io.StringIO(), io.StringIO()
        write_trace(trace, first)
        write_trace(trace, second)
        assert first.getvalue() == second.getvalue()

    def test_double_round_trip_is_fixed_point(self):
        _graph, trace = traced_run(True)
        once = io.StringIO()
        write_trace(trace, once)
        once.seek(0)
        twice = io.StringIO()
        write_trace(read_trace(once), twice)
        assert once.getvalue() == twice.getvalue()


class TestErrors:
    def test_empty_stream(self):
        with pytest.raises(ValueError, match="missing header"):
            read_trace(io.StringIO(""))

    @pytest.mark.parametrize("version", [99, 0, 2, None, "1"])
    def test_unknown_header_version_rejected(self, version):
        import json

        header = {
            "format_version": version,
            "record_probabilities": False,
            "num_rounds": 0,
            "retirements": [],
        }
        if version is None:
            del header["format_version"]
        with pytest.raises(ValueError, match="version"):
            read_trace(io.StringIO(json.dumps(header) + "\n"))

    def test_round_count_mismatch(self):
        stream = io.StringIO(
            '{"format_version": 1, "record_probabilities": false, '
            '"num_rounds": 2, "retirements": []}\n'
            '{"round": 0, "beepers": [], "heard": [], "joined": [], '
            '"retired": [], "crashed": []}\n'
        )
        with pytest.raises(ValueError, match="declares 2 rounds"):
            read_trace(stream)
