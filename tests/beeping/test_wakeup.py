"""Tests for the wake-on-beep asynchronous-start model."""

from random import Random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.beeping.wakeup import (
    WakeupSimulation,
    random_wake_schedule,
)
from repro.core.policy import ExponentFeedbackNode
from repro.graphs.graph import Graph
from repro.graphs.random_graphs import gnp_random_graph
from repro.graphs.structured import (
    complete_graph,
    empty_graph,
    path_graph,
    star_graph,
)


def feedback_factory(vertex):
    return ExponentFeedbackNode()


class TestConstruction:
    def test_schedule_length_checked(self):
        with pytest.raises(ValueError, match="entries"):
            WakeupSimulation(path_graph(3), feedback_factory, [0, 0], Random(1))

    def test_negative_wake_round_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            WakeupSimulation(
                path_graph(2), feedback_factory, [0, -1], Random(1)
            )

    def test_random_schedule_bounds(self):
        schedule = random_wake_schedule(100, 7, Random(1))
        assert len(schedule) == 100
        assert all(0 <= r <= 7 for r in schedule)
        with pytest.raises(ValueError):
            random_wake_schedule(5, -1, Random(1))


class TestAllAwakeAtZero:
    """With an all-zero schedule the model degenerates to the synchronous
    one: same MIS validity, comparable round counts."""

    def test_valid_mis(self, random50):
        result = WakeupSimulation(
            random50, feedback_factory, [0] * 50, Random(2)
        ).run()
        result.verify()
        assert all(w == 0 for w in result.wake_round.values())

    def test_round_count_logarithmic_band(self, random50):
        result = WakeupSimulation(
            random50, feedback_factory, [0] * 50, Random(3)
        ).run()
        assert result.num_rounds < 60


class TestStaggeredStarts:
    @pytest.mark.parametrize("max_delay", [2, 10, 40])
    def test_valid_mis_any_delay(self, max_delay):
        graph = gnp_random_graph(40, 0.3, Random(max_delay))
        schedule = random_wake_schedule(40, max_delay, Random(5))
        result = WakeupSimulation(
            graph, feedback_factory, schedule, Random(6)
        ).run()
        result.verify()

    def test_sleeping_neighbors_retired_by_join(self):
        # Star where the hub wakes at 0 and leaves wake very late: the hub
        # joins alone, and the announcement must retire sleeping leaves.
        graph = star_graph(6)
        schedule = [0] + [50] * 6
        result = WakeupSimulation(
            graph, feedback_factory, schedule, Random(7)
        ).run()
        result.verify()
        assert 0 in result.mis
        assert result.num_rounds < 50  # leaves never had to wake on schedule

    def test_wake_on_beep_recorded(self):
        # Path 0-1: vertex 1 sleeps until 100 but 0's beeping wakes it.
        graph = Graph(2, [(0, 1)])
        result = WakeupSimulation(
            graph, feedback_factory, [0, 100], Random(8)
        ).run()
        result.verify()
        assert result.wake_round[1] < 100

    def test_isolated_sleeper_waits_for_schedule(self):
        graph = empty_graph(2)
        result = WakeupSimulation(
            graph, feedback_factory, [0, 5], Random(9)
        ).run()
        result.verify()
        assert result.mis == {0, 1}
        assert result.wake_round[1] == 5
        assert result.num_rounds >= 6

    def test_delay_costs_bounded_rounds(self):
        """Staggered starts add at most ~max_delay rounds on average."""
        graph = gnp_random_graph(40, 0.4, Random(10))
        synchronous = []
        staggered = []
        for t in range(10):
            synchronous.append(
                WakeupSimulation(
                    graph, feedback_factory, [0] * 40, Random(100 + t)
                ).run().num_rounds
            )
            schedule = random_wake_schedule(40, 10, Random(200 + t))
            staggered.append(
                WakeupSimulation(
                    graph, feedback_factory, schedule, Random(100 + t)
                ).run().num_rounds
            )
        assert sum(staggered) / 10 < sum(synchronous) / 10 + 15

    def test_complete_graph_staggered(self):
        graph = complete_graph(12)
        schedule = random_wake_schedule(12, 6, Random(11))
        result = WakeupSimulation(
            graph, feedback_factory, schedule, Random(12)
        ).run()
        result.verify()
        assert len(result.mis) == 1


@given(
    n=st.integers(min_value=1, max_value=15),
    p=st.floats(min_value=0.0, max_value=1.0),
    max_delay=st.integers(min_value=0, max_value=12),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=40, deadline=None)
def test_property_wakeup_always_mis(n, p, max_delay, seed):
    graph = gnp_random_graph(n, p, Random(seed))
    schedule = random_wake_schedule(n, max_delay, Random(seed ^ 0xAA))
    result = WakeupSimulation(
        graph, feedback_factory, schedule, Random(seed ^ 0xBB),
        max_rounds=50_000,
    ).run()
    result.verify()
