"""Tests for the Collier Notch–Delta model (the Figure 4 mechanism)."""

from random import Random

import numpy as np
import pytest

from repro.bio.notch_delta import (
    CollierParameters,
    NotchDeltaModel,
    two_cell_demo,
)
from repro.graphs.graph import Graph
from repro.graphs.structured import hex_lattice_graph


class TestParameters:
    def test_defaults_are_collier_1996(self):
        params = CollierParameters()
        assert params.a == 0.01
        assert params.b == 100.0
        assert params.k == 2.0
        assert params.h == 2.0
        assert params.nu == 1.0

    def test_trans_activation_monotone_increasing(self):
        params = CollierParameters()
        xs = np.linspace(0.0, 1.0, 20)
        ys = params.trans_activation(xs)
        assert (np.diff(ys) >= 0).all()
        assert ys[0] == 0.0

    def test_cis_inhibition_monotone_decreasing(self):
        params = CollierParameters()
        xs = np.linspace(0.0, 1.0, 20)
        ys = params.cis_inhibition(xs)
        assert (np.diff(ys) <= 0).all()
        assert ys[0] == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [{"a": 0.0}, {"b": -1.0}, {"k": 0.0}, {"h": -2.0}, {"nu": 0.0}],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            CollierParameters(**kwargs)


class TestTwoCellDemo:
    """Figure 4: a slight Delta excess flips the pair into mutually
    exclusive sender/receiver states."""

    def test_mutually_exclusive_states(self):
        result = two_cell_demo()
        sender_delta = result.final_delta[1]
        receiver_delta = result.final_delta[0]
        assert sender_delta > 0.9
        assert receiver_delta < 0.1
        assert result.final_notch[0] > 0.9
        assert result.final_notch[1] < 0.1

    def test_bias_direction_decides_winner(self):
        biased_up = two_cell_demo(delta_bias=0.05)
        assert biased_up.final_delta[1] > biased_up.final_delta[0]

    def test_trajectories_recorded(self):
        result = two_cell_demo()
        assert result.times.shape[0] == result.delta.shape[0]
        assert result.delta.shape[1] == 2
        trajectory = result.delta_trajectory(1)
        assert trajectory[0] == pytest.approx(0.51, abs=0.01)
        assert trajectory[-1] > 0.9
        assert result.notch_trajectory(0)[-1] > 0.9


class TestLatticeModel:
    def test_pattern_is_mis(self):
        from repro.bio.sop import analyze_sop_pattern, select_sops_by_delta

        graph = hex_lattice_graph(7, 7)
        model = NotchDeltaModel(graph)
        result = model.run(Random(9), t_end=100.0)
        sops = select_sops_by_delta(result.final_delta)
        report = analyze_sop_pattern(graph, sops, result.final_delta)
        assert report.num_sops > 0
        assert report.is_independent
        # Lateral inhibition leaves no uncovered cell on a lattice run
        # that has converged.
        assert report.uncovered_cells == 0
        assert report.delta_separation > 0.5

    def test_isolated_cell_becomes_sender(self):
        graph = Graph(1)
        model = NotchDeltaModel(graph)
        result = model.run(Random(1), t_end=40.0)
        # No neighbours -> no Notch activation -> Delta rises to G(0)=1.
        assert result.final_delta[0] > 0.9

    def test_custom_initial_state(self):
        graph = Graph(2, [(0, 1)])
        model = NotchDeltaModel(graph)
        initial = np.array([0.5, 0.5, 0.9, 0.1])
        result = model.run(Random(1), initial_state=initial, t_end=40.0)
        # Cell 0 starts Delta-rich and must win.
        assert result.final_delta[0] > result.final_delta[1]

    def test_initial_state_shape_checked(self):
        model = NotchDeltaModel(Graph(2, [(0, 1)]))
        with pytest.raises(ValueError, match="shape"):
            model.run(Random(1), initial_state=np.zeros(3))

    def test_initial_state_perturbation_bounds(self):
        model = NotchDeltaModel(Graph(3))
        with pytest.raises(ValueError):
            model.initial_state(Random(1), perturbation=1.5)
        state = model.initial_state(Random(1), perturbation=0.02)
        assert ((state >= 0.48) & (state <= 0.52)).all()

    def test_deterministic_given_seed(self):
        graph = hex_lattice_graph(4, 4)
        model = NotchDeltaModel(graph)
        a = model.run(Random(3), t_end=30.0)
        b = model.run(Random(3), t_end=30.0)
        assert np.array_equal(a.final_delta, b.final_delta)
