"""Unit tests for the RK4 integrator."""

import math

import numpy as np
import pytest

from repro.bio.ode import rk4_integrate, rk4_step


class TestRk4Step:
    def test_exact_for_constant_derivative(self):
        f = lambda t, y: np.array([2.0])
        y1 = rk4_step(f, 0.0, np.array([1.0]), 0.5)
        assert y1[0] == pytest.approx(2.0)

    def test_exponential_accuracy(self):
        f = lambda t, y: y
        y1 = rk4_step(f, 0.0, np.array([1.0]), 0.1)
        assert y1[0] == pytest.approx(math.exp(0.1), rel=1e-7)


class TestRk4Integrate:
    def test_exponential_decay(self):
        f = lambda t, y: -y
        times, states = rk4_integrate(f, np.array([1.0]), (0.0, 2.0), 0.01)
        assert times[0] == 0.0
        assert times[-1] == pytest.approx(2.0)
        assert states[-1, 0] == pytest.approx(math.exp(-2.0), rel=1e-6)

    def test_harmonic_oscillator_energy(self):
        # y = (position, velocity); energy must be conserved to high order.
        def f(t, y):
            return np.array([y[1], -y[0]])

        _times, states = rk4_integrate(
            f, np.array([1.0, 0.0]), (0.0, 10.0), 0.01
        )
        energies = states[:, 0] ** 2 + states[:, 1] ** 2
        assert np.allclose(energies, 1.0, atol=1e-6)

    def test_time_dependent_rhs(self):
        f = lambda t, y: np.array([t])
        _times, states = rk4_integrate(f, np.array([0.0]), (0.0, 3.0), 0.01)
        assert states[-1, 0] == pytest.approx(4.5, rel=1e-8)

    def test_final_partial_step(self):
        f = lambda t, y: np.array([1.0])
        times, states = rk4_integrate(f, np.array([0.0]), (0.0, 1.05), 0.1)
        assert times[-1] == pytest.approx(1.05)
        assert states[-1, 0] == pytest.approx(1.05)

    def test_record_every(self):
        f = lambda t, y: -y
        times_all, _ = rk4_integrate(f, np.array([1.0]), (0.0, 1.0), 0.1)
        times_sparse, states_sparse = rk4_integrate(
            f, np.array([1.0]), (0.0, 1.0), 0.1, record_every=5
        )
        assert len(times_sparse) < len(times_all)
        assert times_sparse[-1] == pytest.approx(1.0)
        assert states_sparse[-1, 0] == pytest.approx(math.exp(-1.0), rel=1e-6)

    def test_initial_state_not_mutated(self):
        y0 = np.array([1.0])
        rk4_integrate(lambda t, y: -y, y0, (0.0, 1.0), 0.1)
        assert y0[0] == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"t_span": (1.0, 0.0), "dt": 0.1},
            {"t_span": (0.0, 1.0), "dt": 0.0},
            {"t_span": (0.0, 1.0), "dt": 0.1, "record_every": 0},
        ],
    )
    def test_invalid_arguments(self, kwargs):
        with pytest.raises(ValueError):
            rk4_integrate(lambda t, y: y, np.array([1.0]), **kwargs)
