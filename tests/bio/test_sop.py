"""Tests for SOP pattern analysis."""

import pytest

from repro.bio.sop import analyze_sop_pattern, select_sops_by_delta
from repro.graphs.graph import Graph
from repro.graphs.structured import path_graph


class TestSelection:
    def test_threshold_selection(self):
        deltas = [0.95, 0.02, 0.88, 0.1]
        assert select_sops_by_delta(deltas) == {0, 2}

    def test_custom_threshold(self):
        deltas = [0.4, 0.6]
        assert select_sops_by_delta(deltas, threshold=0.3) == {0, 1}

    def test_empty(self):
        assert select_sops_by_delta([]) == set()


class TestAnalysis:
    def test_perfect_pattern(self):
        graph = path_graph(5)
        report = analyze_sop_pattern(graph, {0, 2, 4})
        assert report.is_independent
        assert report.is_maximal
        assert report.is_mis
        assert report.num_sops == 3
        assert report.num_cells == 5

    def test_violating_pattern(self):
        graph = path_graph(4)
        report = analyze_sop_pattern(graph, {0, 1})
        assert not report.is_independent
        assert report.adjacent_sop_pairs == 1
        assert not report.is_mis

    def test_non_maximal_pattern(self):
        graph = path_graph(5)
        report = analyze_sop_pattern(graph, {0})
        assert report.is_independent
        assert report.uncovered_cells == 3
        assert not report.is_maximal

    def test_delta_separation(self):
        graph = path_graph(3)
        report = analyze_sop_pattern(graph, {1}, [0.1, 0.9, 0.2])
        assert report.delta_separation == pytest.approx(0.7)

    def test_separation_zero_without_levels(self):
        graph = path_graph(3)
        assert analyze_sop_pattern(graph, {1}).delta_separation == 0.0

    def test_separation_zero_when_all_sops(self):
        graph = Graph(2)
        report = analyze_sop_pattern(graph, {0, 1}, [0.9, 0.8])
        assert report.delta_separation == 0.0

    def test_negative_separation_for_overlap(self):
        graph = path_graph(4)
        report = analyze_sop_pattern(graph, {0, 2}, [0.6, 0.7, 0.9, 0.1])
        assert report.delta_separation < 0
