"""Tests for the stochastic accumulation SOP model."""

from random import Random

import pytest

from repro.bio.stochastic import StochasticSOPModel
from repro.graphs.random_graphs import gnp_random_graph
from repro.graphs.structured import complete_graph, empty_graph, hex_lattice_graph
from repro.graphs.validation import is_maximal_independent_set


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"threshold": 0.0},
            {"rate_low": 0.0},
            {"rate_low": 2.0, "rate_high": 1.0},
            {"rate_change_probability": 1.5},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            StochasticSOPModel(**kwargs)


class TestSelection:
    def test_sops_form_mis(self):
        model = StochasticSOPModel()
        for seed in range(5):
            graph = gnp_random_graph(30, 0.3, Random(seed))
            result = model.run(graph, Random(seed + 50))
            assert is_maximal_independent_set(graph, result.sops)

    def test_partition_is_complete(self):
        graph = hex_lattice_graph(5, 5)
        result = StochasticSOPModel().run(graph, Random(3))
        assert result.sops | result.inhibited == set(graph.vertices())
        assert result.sops & result.inhibited == set()

    def test_complete_graph_single_sop(self):
        result = StochasticSOPModel().run(complete_graph(10), Random(4))
        assert len(result.sops) == 1

    def test_isolated_cells_all_sops(self):
        result = StochasticSOPModel().run(empty_graph(6), Random(5))
        assert result.sops == set(range(6))

    def test_commit_steps_recorded(self):
        graph = hex_lattice_graph(4, 4)
        result = StochasticSOPModel().run(graph, Random(6))
        assert set(result.commit_step) == result.sops
        assert all(0 <= s < result.steps for s in result.commit_step.values())
        assert result.selection_times == sorted(result.selection_times)

    def test_selection_times_vary(self):
        """The biological signature: SOPs commit at spread-out times."""
        graph = hex_lattice_graph(6, 6)
        result = StochasticSOPModel().run(graph, Random(7))
        times = result.selection_times
        assert len(set(times)) > 1

    def test_deterministic(self):
        graph = gnp_random_graph(20, 0.3, Random(8))
        a = StochasticSOPModel().run(graph, Random(9))
        b = StochasticSOPModel().run(graph, Random(9))
        assert a.sops == b.sops
        assert a.commit_step == b.commit_step
