"""Shared fixtures for the test-suite.

Small named graphs with known MIS structure, plus seeded RNG factories.
Everything is deterministic: fixtures take no entropy from the environment.
"""

from __future__ import annotations

from random import Random

import pytest

from repro.graphs.graph import Graph
from repro.graphs.random_graphs import gnp_random_graph
from repro.graphs.structured import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)


@pytest.fixture
def rng() -> Random:
    """A fresh deterministic RNG per test."""
    return Random(0xC0FFEE)


@pytest.fixture
def triangle() -> Graph:
    """K3: any single vertex is an MIS."""
    return complete_graph(3)


@pytest.fixture
def p4() -> Graph:
    """The 4-path 0-1-2-3: MISes are {0,2}, {0,3}, {1,3}."""
    return path_graph(4)


@pytest.fixture
def c5() -> Graph:
    """The 5-cycle: every MIS has exactly 2 vertices."""
    return cycle_graph(5)


@pytest.fixture
def star10() -> Graph:
    """A star with 10 leaves: MIS is the hub alone or all leaves."""
    return star_graph(10)


@pytest.fixture
def grid4x4() -> Graph:
    """The 4x4 grid."""
    return grid_graph(4, 4)


@pytest.fixture
def random50() -> Graph:
    """A fixed G(50, 0.5) instance."""
    return gnp_random_graph(50, 0.5, Random(50))


@pytest.fixture
def sparse80() -> Graph:
    """A fixed sparse G(80, 0.05) instance (has isolated vertices)."""
    return gnp_random_graph(80, 0.05, Random(80))
