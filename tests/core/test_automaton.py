"""Unit tests for the Figure 2 node automaton, plus an agreement test
driving the automaton and the scheduler side by side."""

from random import Random

import pytest

from repro.core.automaton import AutomatonState, NodeAutomaton


class TestStates:
    def test_terminal_flags(self):
        assert AutomatonState.JOINED.is_terminal
        assert AutomatonState.NEIGHBOR_IN_MIS.is_terminal
        assert not AutomatonState.INITIAL.is_terminal
        assert not AutomatonState.SIGNALLING.is_terminal


class TestTransitions:
    def test_signalling_entered_with_probability_one(self):
        automaton = NodeAutomaton(initial_probability=0.5)
        # rng that always returns 0.0 -> always below p.
        class ZeroRandom(Random):
            def random(self):
                return 0.0

        assert automaton.first_exchange_start(ZeroRandom()) is True
        assert automaton.state is AutomatonState.SIGNALLING

    def test_not_signalling_with_probability_zero_draw(self):
        automaton = NodeAutomaton()

        class OneRandom(Random):
            def random(self):
                return 0.999999

        assert automaton.first_exchange_start(OneRandom()) is False
        assert automaton.state is AutomatonState.INITIAL

    def test_neighbor_signal_stops_signalling_and_reduces_p(self):
        automaton = NodeAutomaton()
        automaton._state = AutomatonState.SIGNALLING
        automaton.first_exchange_feedback(neighbor_signalling=True)
        assert automaton.state is AutomatonState.INITIAL
        assert automaton.probability == 0.25

    def test_silence_increases_p_with_cap(self):
        automaton = NodeAutomaton()
        automaton.first_exchange_feedback(neighbor_signalling=True)
        automaton.first_exchange_feedback(neighbor_signalling=False)
        assert automaton.probability == 0.5
        automaton.first_exchange_feedback(neighbor_signalling=False)
        assert automaton.probability == 0.5

    def test_uncontested_signaller_joins(self):
        automaton = NodeAutomaton()
        automaton._state = AutomatonState.SIGNALLING
        automaton.first_exchange_feedback(neighbor_signalling=False)
        outcome = automaton.second_exchange(neighbor_joined=False)
        assert outcome is AutomatonState.JOINED
        assert not automaton.is_active

    def test_neighbor_join_retires(self):
        automaton = NodeAutomaton()
        outcome = automaton.second_exchange(neighbor_joined=True)
        assert outcome is AutomatonState.NEIGHBOR_IN_MIS

    def test_no_event_stays_active(self):
        automaton = NodeAutomaton()
        assert automaton.second_exchange(neighbor_joined=False) is None
        assert automaton.is_active

    def test_terminal_state_rejects_further_rounds(self):
        automaton = NodeAutomaton()
        automaton.second_exchange(neighbor_joined=True)
        with pytest.raises(RuntimeError):
            automaton.first_exchange_start(Random(1))

    def test_invalid_initial_probability(self):
        with pytest.raises(ValueError):
            NodeAutomaton(initial_probability=0.9)


class TestAgreementWithScheduler:
    """Drive a whole network of automata and compare against the scheduler.

    Both implementations consume randomness differently, so agreement is
    checked by *simulating the scheduler's beep decisions into the
    automata*: for each recorded round we feed each automaton the same
    signals the scheduler saw and assert the final states coincide.
    """

    def test_replay_agreement(self):
        from repro.beeping.events import Trace
        from repro.beeping.node import NodeState
        from repro.beeping.scheduler import BeepingSimulation
        from repro.core.policy import ExponentFeedbackNode
        from repro.graphs.random_graphs import gnp_random_graph

        graph = gnp_random_graph(25, 0.3, Random(77))
        trace = Trace()
        result = BeepingSimulation(
            graph, lambda v: ExponentFeedbackNode(), Random(78), trace=trace
        ).run()

        automata = [NodeAutomaton() for _ in graph.vertices()]
        for event in trace.rounds:
            for v in graph.vertices():
                if not automata[v].is_active:
                    continue
                # Replay the scheduler's beep decision.
                if v in event.beepers:
                    automata[v]._state = AutomatonState.SIGNALLING
                automata[v].first_exchange_feedback(v in event.heard)
            for v in graph.vertices():
                if not automata[v].is_active:
                    continue
                neighbor_joined = any(
                    w in event.joined for w in graph.neighbors(v)
                )
                automata[v].second_exchange(neighbor_joined)

        for v in graph.vertices():
            if v in result.mis:
                assert automata[v].state is AutomatonState.JOINED
            else:
                assert automata[v].state is AutomatonState.NEIGHBOR_IN_MIS
