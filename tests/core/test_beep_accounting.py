"""Tests for the Theorem 6 beep decomposition."""

from random import Random

import pytest

from repro.beeping.events import Trace
from repro.beeping.scheduler import BeepingSimulation
from repro.core.beep_accounting import decompose_beeps, mean_decomposition
from repro.core.policy import ExponentFeedbackNode
from repro.graphs.random_graphs import gnp_random_graph
from repro.graphs.structured import complete_graph, empty_graph


def traced_run(graph, seed):
    trace = Trace(record_probabilities=True)
    result = BeepingSimulation(
        graph, lambda v: ExponentFeedbackNode(), Random(seed), trace=trace
    ).run()
    return trace, result


class TestDecomposition:
    def test_categories_account_for_all_beeps(self):
        graph = gnp_random_graph(30, 0.5, Random(61))
        trace, result = traced_run(graph, 62)
        for v in graph.vertices():
            decomposition = decompose_beeps(trace, v)
            assert decomposition.accounted == decomposition.total_beeps
            assert (
                decomposition.total_beeps
                == result.metrics.beeps_by_node[v]
            )

    def test_isolated_vertex_single_cap_beep(self):
        # An isolated vertex beeps geometrically at the cap until it joins:
        # exactly its joining beep, a cap beep.
        trace, result = traced_run(empty_graph(1), 63)
        decomposition = decompose_beeps(trace, 0)
        assert decomposition.total_beeps == 1
        assert decomposition.cap_beeps == 1
        assert decomposition.new_low_beeps == 0

    def test_requires_probability_trace(self):
        graph = complete_graph(3)
        trace = Trace()
        BeepingSimulation(
            graph, lambda v: ExponentFeedbackNode(), Random(64), trace=trace
        ).run()
        with pytest.raises(ValueError):
            decompose_beeps(trace, 0)

    def test_steps_active_bounded_by_rounds(self):
        graph = gnp_random_graph(20, 0.4, Random(65))
        trace, result = traced_run(graph, 66)
        for v in graph.vertices():
            assert decompose_beeps(trace, v).steps_active <= result.num_rounds


class TestTheorem6Bounds:
    """Empirical checks of the proof's per-category expectations:
    new-low ≤ 1, cap ≤ 1 (a cap beep terminates the node), and the total
    under the proof's bound of 8."""

    @pytest.fixture(scope="class")
    def aggregate(self):
        totals = {"total": 0.0, "new_low": 0.0, "cap": 0.0, "paired": 0.0}
        runs = 8
        for t in range(runs):
            graph = gnp_random_graph(40, 0.5, Random(700 + t))
            trace, _result = traced_run(graph, 800 + t)
            means = mean_decomposition(trace, graph.num_vertices)
            for key in totals:
                totals[key] += means[key] / runs
        return totals

    def test_total_under_proof_bound(self, aggregate):
        # Proof: E[beeps] < 1 + 1 + 2*3 = 8; measured ~1.1.
        assert aggregate["total"] < 8.0
        assert 0.5 < aggregate["total"] < 2.5

    def test_new_low_under_one(self, aggregate):
        assert aggregate["new_low"] <= 1.0

    def test_cap_beeps_under_one(self, aggregate):
        # A beep at the cap with no beeping neighbour joins the node, so
        # per node it happens at most... once per run on average.
        assert aggregate["cap"] <= 1.0

    def test_paired_beeps_bounded(self, aggregate):
        assert aggregate["paired"] <= 6.0
