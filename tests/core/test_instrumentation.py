"""Tests for the Theorem 2 proof instrumentation.

Beyond unit-testing the measure computations, these tests check the proof's
probabilistic claims *empirically* on real runs: the E4 event should be rare
(Claim 2 bounds it by 1/80 per round), and the classification must assign
exactly one event per active round.
"""

from random import Random

import pytest

from repro.beeping.events import Trace
from repro.beeping.scheduler import BeepingSimulation
from repro.core.instrumentation import (
    EventKind,
    PotentialTracker,
    classify_vertex_rounds,
    event_frequencies,
    measure,
    neighborhood_weight,
    partition_light_heavy,
    probability_map,
)
from repro.core.policy import ExponentFeedbackNode
from repro.graphs.graph import Graph
from repro.graphs.random_graphs import gnp_random_graph
from repro.graphs.structured import complete_graph, star_graph


def run_with_trace(graph, seed):
    trace = Trace(record_probabilities=True)
    result = BeepingSimulation(
        graph, lambda v: ExponentFeedbackNode(), Random(seed), trace=trace
    ).run()
    return result, trace


class TestMeasures:
    def test_initial_measure_is_half_per_vertex(self):
        graph = complete_graph(4)
        _result, trace = run_with_trace(graph, 1)
        prob_map = probability_map(trace, 0)
        assert measure(prob_map, graph.vertices()) == pytest.approx(2.0)

    def test_inactive_vertices_have_zero_measure(self):
        graph = star_graph(5)
        _result, trace = run_with_trace(graph, 2)
        final = probability_map(trace, trace.num_rounds - 1)
        # By the last round some vertices are inactive and absent.
        assert measure(final, [999]) == 0.0

    def test_neighborhood_weight(self):
        graph = Graph(3, [(0, 1), (0, 2)])
        prob_map = {0: 0.5, 1: 0.25, 2: 0.125}
        assert neighborhood_weight(graph, prob_map, 0) == pytest.approx(0.375)
        assert neighborhood_weight(graph, prob_map, 1) == pytest.approx(0.5)

    def test_probability_map_requires_recording(self):
        graph = complete_graph(3)
        trace = Trace()  # no probability recording
        BeepingSimulation(
            graph, lambda v: ExponentFeedbackNode(), Random(3), trace=trace
        ).run()
        with pytest.raises(ValueError, match="record_probabilities"):
            probability_map(trace, 0)


class TestLightHeavyPartition:
    def test_all_light_in_small_graph(self):
        graph = complete_graph(4)
        prob_map = {v: 0.5 for v in range(4)}
        light, heavy = partition_light_heavy(graph, prob_map, 0, lam=7.0)
        assert sorted(light) == [1, 2, 3]
        assert heavy == []

    def test_heavy_detection(self):
        # Star hub with 20 leaves at weight 0.5: leaves see weight 0.5
        # (just the hub), hub sees 10.0 -> the hub is heavy from a leaf's
        # viewpoint with lambda = 7.
        graph = star_graph(20)
        prob_map = {v: 0.5 for v in range(21)}
        light, heavy = partition_light_heavy(graph, prob_map, 1, lam=7.0)
        assert heavy == [0]
        assert light == []

    def test_inactive_neighbors_skipped(self):
        graph = complete_graph(3)
        prob_map = {0: 0.5}  # 1 and 2 inactive
        light, heavy = partition_light_heavy(graph, prob_map, 0)
        assert light == [] and heavy == []


class TestClassification:
    def test_exactly_one_event_per_active_round(self):
        graph = gnp_random_graph(30, 0.5, Random(41))
        result, trace = run_with_trace(graph, 42)
        for v in graph.vertices():
            classifications = classify_vertex_rounds(graph, trace, v)
            # v is active from round 0 until it leaves; classifications
            # cover exactly that prefix.
            assert len(classifications) >= 1
            for index, classification in enumerate(classifications):
                assert classification.round_index == index
                assert classification.kind in EventKind

    def test_e4_is_rare(self):
        """Claim 2: P[E4] <= 1/80 per round.  Empirically the frequency
        over all vertices and rounds should be far below a loose 0.10."""
        graph = gnp_random_graph(40, 0.5, Random(43))
        total = 0
        e4 = 0
        for seed in range(5):
            _result, trace = run_with_trace(graph, 100 + seed)
            for v in graph.vertices():
                for classification in classify_vertex_rounds(graph, trace, v):
                    total += 1
                    if classification.kind is EventKind.E4:
                        e4 += 1
        assert total > 0
        assert e4 / total < 0.10

    def test_low_degree_vertices_mostly_e2(self):
        # In a sparse graph neighbourhood weights are tiny: E2 dominates.
        graph = gnp_random_graph(40, 0.02, Random(44))
        _result, trace = run_with_trace(graph, 45)
        frequencies = {}
        for v in graph.vertices():
            for c in classify_vertex_rounds(graph, trace, v):
                frequencies[c.kind] = frequencies.get(c.kind, 0) + 1
        assert frequencies.get(EventKind.E2, 0) >= frequencies.get(
            EventKind.E4, 0
        )

    def test_event_frequencies_sum_to_one(self):
        graph = gnp_random_graph(20, 0.4, Random(46))
        _result, trace = run_with_trace(graph, 47)
        classifications = classify_vertex_rounds(graph, trace, 0)
        frequencies = event_frequencies(classifications)
        assert sum(frequencies.values()) == pytest.approx(1.0)

    def test_event_frequencies_empty(self):
        frequencies = event_frequencies([])
        assert all(value == 0.0 for value in frequencies.values())


class TestPotentialTracker:
    def test_total_measure_decreases_overall(self):
        graph = gnp_random_graph(40, 0.5, Random(48))
        _result, trace = run_with_trace(graph, 49)
        tracker = PotentialTracker(graph, trace)
        series = tracker.total_measure_series()
        assert series[0] == pytest.approx(20.0)  # n/2 initially
        assert series[-1] < series[0]

    def test_active_counts_monotone_nonincreasing(self):
        graph = gnp_random_graph(40, 0.5, Random(50))
        _result, trace = run_with_trace(graph, 51)
        tracker = PotentialTracker(graph, trace)
        counts = tracker.active_count_series()
        assert counts == sorted(counts, reverse=True)
        assert counts[0] == 40

    def test_neighborhood_series_stops_at_inactivity(self):
        graph = complete_graph(6)
        result, trace = run_with_trace(graph, 52)
        tracker = PotentialTracker(graph, trace)
        winner = next(iter(result.mis))
        series = tracker.neighborhood_series(winner)
        assert len(series) == trace.join_round_of(winner) + 1
