"""Unit tests for the feedback policies (Table 1 / Definition 1)."""

import pytest

from repro.core.policy import ExponentFeedbackNode, FeedbackNode


class TestExponentFeedbackNode:
    def test_initial_state(self):
        node = ExponentFeedbackNode()
        assert node.exponent == 1
        assert node.beep_probability() == 0.5

    def test_hearing_halves(self):
        node = ExponentFeedbackNode()
        node.observe_first_exchange(did_beep=False, heard_beep=True)
        assert node.beep_probability() == 0.25
        node.observe_first_exchange(did_beep=True, heard_beep=True)
        assert node.beep_probability() == 0.125

    def test_silence_doubles_with_cap(self):
        node = ExponentFeedbackNode()
        node.observe_first_exchange(False, True)
        node.observe_first_exchange(False, True)
        assert node.beep_probability() == 0.125
        node.observe_first_exchange(False, False)
        assert node.beep_probability() == 0.25
        node.observe_first_exchange(False, False)
        assert node.beep_probability() == 0.5
        node.observe_first_exchange(False, False)
        assert node.beep_probability() == 0.5  # capped

    def test_exponent_floor_is_one(self):
        node = ExponentFeedbackNode()
        for _ in range(5):
            node.observe_first_exchange(False, False)
        assert node.exponent == 1

    def test_exponent_grows_unboundedly(self):
        node = ExponentFeedbackNode()
        for _ in range(60):
            node.observe_first_exchange(False, True)
        assert node.exponent == 61
        assert node.beep_probability() == pytest.approx(2.0 ** -61)

    def test_update_ignores_own_beep_flag(self):
        # Definition 1's updates depend only on whether a neighbour beeped.
        a = ExponentFeedbackNode()
        b = ExponentFeedbackNode()
        a.observe_first_exchange(did_beep=True, heard_beep=True)
        b.observe_first_exchange(did_beep=False, heard_beep=True)
        assert a.exponent == b.exponent

    def test_describe(self):
        assert "n=1" in ExponentFeedbackNode().describe()


class TestFeedbackNode:
    def test_defaults_match_exponent_policy(self):
        general = FeedbackNode()
        exact = ExponentFeedbackNode()
        observations = [True, True, False, True, False, False, False, True]
        for heard in observations:
            general.observe_first_exchange(False, heard)
            exact.observe_first_exchange(False, heard)
            assert general.beep_probability() == exact.beep_probability()

    def test_custom_factors(self):
        node = FeedbackNode(decrease_factor=0.4, increase_factor=1.5)
        node.observe_first_exchange(False, True)
        assert node.probability == pytest.approx(0.2)
        node.observe_first_exchange(False, False)
        assert node.probability == pytest.approx(0.3)

    def test_cap_respected(self):
        node = FeedbackNode(increase_factor=10.0, max_probability=0.5)
        node.observe_first_exchange(False, False)
        assert node.probability == 0.5

    def test_floor_respected(self):
        node = FeedbackNode(min_probability=0.1)
        for _ in range(10):
            node.observe_first_exchange(False, True)
        assert node.probability == pytest.approx(0.1)

    def test_custom_initial_probability(self):
        node = FeedbackNode(initial_probability=0.125)
        assert node.beep_probability() == 0.125

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"decrease_factor": 0.0},
            {"decrease_factor": 1.0},
            {"increase_factor": 1.0},
            {"increase_factor": 0.5},
            {"max_probability": 0.0},
            {"max_probability": 1.5},
            {"min_probability": -0.1},
            {"min_probability": 0.9},
            {"initial_probability": 0.0},
            {"initial_probability": 0.9},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FeedbackNode(**kwargs)

    def test_describe_mentions_factors(self):
        text = FeedbackNode(decrease_factor=0.4).describe()
        assert "down=0.4" in text
