"""Unit tests for the Section 6 robustness variant factories."""

from random import Random

import pytest

from repro.beeping.scheduler import BeepingSimulation
from repro.core.variants import (
    heterogeneous_feedback_factory,
    jittered_factor_factory,
    random_initial_probability_factory,
    uniform_feedback_factory,
)
from repro.graphs.random_graphs import gnp_random_graph


class TestUniformFactory:
    def test_default_is_paper_algorithm(self):
        node = uniform_feedback_factory()(0)
        assert node.beep_probability() == 0.5
        node.observe_first_exchange(False, True)
        assert node.beep_probability() == 0.25

    def test_custom_factors_propagate(self):
        node = uniform_feedback_factory(decrease_factor=0.25)(0)
        node.observe_first_exchange(False, True)
        assert node.beep_probability() == 0.125


class TestHeterogeneousFactory:
    def test_reproducible_per_vertex(self):
        factory = heterogeneous_feedback_factory(seed=3)
        a1 = factory(7)
        a2 = heterogeneous_feedback_factory(seed=3)(7)
        a1.observe_first_exchange(False, True)
        a2.observe_first_exchange(False, True)
        assert a1.beep_probability() == a2.beep_probability()

    def test_vertices_get_varied_factors(self):
        factory = heterogeneous_feedback_factory(
            seed=5, decrease_factors=(0.3, 0.7)
        )
        probabilities = set()
        for v in range(40):
            node = factory(v)
            node.observe_first_exchange(False, True)
            probabilities.add(node.beep_probability())
        assert len(probabilities) == 2  # both menu entries picked

    def test_empty_menu_rejected(self):
        with pytest.raises(ValueError):
            heterogeneous_feedback_factory(seed=1, decrease_factors=())

    def test_produces_valid_mis(self):
        graph = gnp_random_graph(40, 0.4, Random(21))
        result = BeepingSimulation(
            graph, heterogeneous_feedback_factory(seed=9), Random(22)
        ).run()
        result.verify()


class TestRandomInitialProbability:
    def test_initial_in_range(self):
        factory = random_initial_probability_factory(seed=2, low=0.1, high=0.4)
        for v in range(30):
            assert 0.1 <= factory(v).beep_probability() <= 0.4

    def test_bounded_away_from_zero_enforced(self):
        with pytest.raises(ValueError):
            random_initial_probability_factory(seed=1, low=0.0)

    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            random_initial_probability_factory(seed=1, low=0.4, high=0.2)

    def test_produces_valid_mis(self):
        graph = gnp_random_graph(40, 0.4, Random(23))
        result = BeepingSimulation(
            graph, random_initial_probability_factory(seed=10), Random(24)
        ).run()
        result.verify()


class TestJitteredFactors:
    def test_factors_change_over_time(self):
        factory = jittered_factor_factory(seed=4)
        node = factory(0)
        values = []
        for _ in range(6):
            node.observe_first_exchange(False, True)
            values.append(node.beep_probability())
        ratios = {round(b / a, 6) for a, b in zip(values, values[1:])}
        assert len(ratios) > 1  # the decrease factor is being re-drawn

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError):
            jittered_factor_factory(seed=1, decrease_range=(0.0, 0.5))
        with pytest.raises(ValueError):
            jittered_factor_factory(seed=1, increase_range=(0.9, 2.0))

    def test_produces_valid_mis(self):
        graph = gnp_random_graph(40, 0.4, Random(25))
        result = BeepingSimulation(
            graph, jittered_factor_factory(seed=11), Random(26)
        ).run()
        result.verify()


class TestRobustnessClaim:
    """The Section 6 claim: variants stay within a small factor of the
    baseline round count."""

    def test_variants_comparable_to_baseline(self):
        graph = gnp_random_graph(60, 0.5, Random(31))
        trials = 10

        def mean_rounds(factory_builder):
            total = 0
            for t in range(trials):
                result = BeepingSimulation(
                    graph, factory_builder(t), Random(1000 + t)
                ).run()
                result.verify()
                total += result.num_rounds
            return total / trials

        baseline = mean_rounds(lambda t: uniform_feedback_factory())
        heterogeneous = mean_rounds(
            lambda t: heterogeneous_feedback_factory(seed=t)
        )
        jittered = mean_rounds(lambda t: jittered_factor_factory(seed=t))
        varied_start = mean_rounds(
            lambda t: random_initial_probability_factory(seed=t)
        )
        for variant in (heterogeneous, jittered, varied_start):
            assert variant < 4.0 * baseline
