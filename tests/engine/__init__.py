"""Test package: unique module paths for duplicate basenames across suites."""
