"""Shared fixtures for the engine suite: one registry of all fast engines.

The conformance and property tests sweep "every engine x every graph
family x every rule".  This conftest centralises that matrix:

- :func:`engine_run` executes one seeded trial on any engine by id and
  returns the common :class:`~repro.engine.simulator.EngineRun`;
- ``engine_id`` parametrises a test over all five fast engines (the
  fleet engine counts once per backend: dense, sparse, bitboard);
- ``conformance_graph`` parametrises over the graph families the engines
  must agree on (dense/sparse random, grid, geometric, star, isolated
  vertices).
"""

from __future__ import annotations

from random import Random
from typing import Callable

import pytest

from repro.beeping.faults import FaultModel, NO_FAULTS
from repro.beeping.rng import RNG_MODES
from repro.engine.fleet import FleetSimulator
from repro.engine.rules import (
    FeedbackRule,
    GlobalScheduleRule,
    ProbabilityRule,
    SweepRule,
)
from repro.engine.simulator import EngineRun, VectorizedSimulator
from repro.engine.sparse import SparseSimulator
from repro.graphs.graph import Graph
from repro.graphs.random_graphs import gnp_random_graph, random_geometric_graph
from repro.graphs.structured import empty_graph, grid_graph, star_graph

ENGINE_IDS = (
    "dense", "sparse", "fleet-dense", "fleet-sparse", "fleet-bitboard",
)

RULE_FACTORIES = {
    "feedback": FeedbackRule,
    "afek-sweep": SweepRule,
}


def make_rule(name: str, graph: Graph) -> ProbabilityRule:
    """A fresh rule instance by name (afek-global needs graph parameters)."""
    if name == "afek-global":
        return GlobalScheduleRule(graph.num_vertices, max(graph.max_degree(), 1))
    return RULE_FACTORIES[name]()


def engine_run(
    engine_id: str,
    graph: Graph,
    rule_factory: Callable[[], ProbabilityRule],
    seed: int,
    validate: bool = False,
    max_rounds: int = 100_000,
    faults: FaultModel = NO_FAULTS,
    rng_mode: str = "stream",
) -> EngineRun:
    """One seeded trial on the engine named by ``engine_id``."""
    if engine_id == "dense":
        return VectorizedSimulator(graph, max_rounds=max_rounds).run(
            rule_factory(), seed, validate=validate, faults=faults,
            rng_mode=rng_mode,
        )
    if engine_id == "sparse":
        return SparseSimulator(graph, max_rounds=max_rounds).run(
            rule_factory(), seed, validate=validate, faults=faults,
            rng_mode=rng_mode,
        )
    if engine_id.startswith("fleet-"):
        backend = engine_id.split("-", 1)[1]
        simulator = FleetSimulator(graph, max_rounds=max_rounds, backend=backend)
        return simulator.run_fleet(
            rule_factory(), [seed], validate=validate, faults=faults,
            rng_mode=rng_mode,
        ).trial_run(0)
    raise ValueError(f"unknown engine id {engine_id!r}")


CONFORMANCE_GRAPHS = {
    "gnp-dense": lambda: gnp_random_graph(40, 0.5, Random(401)),
    "gnp-sparse": lambda: gnp_random_graph(60, 0.05, Random(402)),
    "grid": lambda: grid_graph(6, 5),
    "geometric": lambda: random_geometric_graph(35, 0.3, Random(403)),
    "star": lambda: star_graph(9),
    "isolated": lambda: empty_graph(7),
}


@pytest.fixture(params=ENGINE_IDS)
def engine_id(request) -> str:
    """Every fast engine, by id."""
    return request.param


@pytest.fixture(params=RNG_MODES)
def rng_mode(request) -> str:
    """Both uniform-stream disciplines, by name."""
    return request.param


@pytest.fixture(
    params=list(CONFORMANCE_GRAPHS), ids=list(CONFORMANCE_GRAPHS)
)
def conformance_graph(request) -> Graph:
    """Every conformance graph family, freshly built."""
    return CONFORMANCE_GRAPHS[request.param]()
