"""Conformance wall for the application kernels.

The vectorised application engines must reproduce the per-node
reductions in :mod:`repro.applications` *exactly*: feeding the unchanged
reference code an :class:`~repro.engine.applications.EngineMIS` adapter
(which runs each inner MIS as a one-trial counter fleet on the matching
layer seed) yields the very colouring / matching / chosen set the kernel
computed for the same trial seed.  On top of that exact lock, the
kernels carry the same bit-equality contracts as the other engines:
dense == sparse, batch == per-trial, armada == per-graph fleet, and all
batch dispatch strategies agree.
"""

from random import Random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.applications.coloring import mis_coloring
from repro.applications.dominating import mis_dominating_set
from repro.applications.matching import line_graph, mis_matching
from repro.applications.ruling_sets import graph_power, ruling_set
from repro.beeping.faults import FaultModel
from repro.beeping.rng import derive_seed_block
from repro.engine.applications import (
    APPLICATION_RULES,
    ApplicationArmadaSimulator,
    ApplicationFleetSimulator,
    ColoringRule,
    DominatingSetRule,
    EngineMIS,
    MatchingRule,
    RulingSetRule,
    graph_power_matrix,
    line_graph_arrays,
)
from repro.engine.batch import run_batch
from repro.graphs.random_graphs import gnp_random_graph
from repro.graphs.structured import empty_graph, grid_graph, star_graph

MASTER_SEED = 0x5EED
BACKENDS = ("dense", "sparse")

APPLICATION_GRAPHS = {
    "gnp-dense": lambda: gnp_random_graph(18, 0.4, Random(601)),
    "gnp-sparse": lambda: gnp_random_graph(30, 0.08, Random(602)),
    "grid": lambda: grid_graph(4, 5),
    "star": lambda: star_graph(7),
    "isolated": lambda: empty_graph(6),
}


@pytest.fixture(params=sorted(APPLICATION_RULES))
def rule_name(request):
    return request.param


@pytest.fixture(params=sorted(APPLICATION_GRAPHS))
def application_graph(request):
    return APPLICATION_GRAPHS[request.param]()


def assert_runs_equal(a, b):
    assert a.rule_name == b.rule_name
    assert a.num_vertices == b.num_vertices
    assert np.array_equal(a.rounds, b.rounds)
    assert np.array_equal(a.layers, b.layers)
    assert np.array_equal(a.colors, b.colors)
    assert np.array_equal(a.beeps_by_node, b.beeps_by_node)


class TestHostConstructions:
    """The array-built host graphs equal their per-node counterparts."""

    def test_line_graph_matches_reference(self, application_graph):
        ref_lg, ref_edges = line_graph(application_graph)
        arr_lg, edge_u, edge_v = line_graph_arrays(application_graph)
        assert arr_lg == ref_lg
        assert (
            list(zip(edge_u.tolist(), edge_v.tolist()))
            == [tuple(edge) for edge in ref_edges]
        )

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_graph_power_matches_bfs(self, application_graph, k):
        assert graph_power_matrix(application_graph, k) == graph_power(
            application_graph, k
        )

    def test_graph_power_rejects_k_zero(self):
        with pytest.raises(ValueError, match="k must be"):
            graph_power_matrix(grid_graph(2, 2), 0)


class TestReferenceExactConformance:
    """Same seed -> bit-identical outputs from kernel and reference."""

    TRIALS = 3

    def _kernel_run(self, graph, rule):
        seeds = derive_seed_block(MASTER_SEED, 9, count=self.TRIALS)
        sim = ApplicationFleetSimulator(graph, rule)
        return seeds, sim.run_fleet(seeds, validate=True)

    def test_coloring(self, application_graph):
        seeds, run = self._kernel_run(application_graph, ColoringRule())
        for t in range(self.TRIALS):
            ref = mis_coloring(
                application_graph,
                Random(0),
                algorithm=EngineMIS(int(seeds[t])),
            )
            assert run.colors_list(t) == list(ref.colors)
            assert run.num_colors(t) == ref.num_colors
            assert int(run.rounds[t]) == ref.total_rounds

    def test_matching(self, application_graph):
        rule = MatchingRule()
        seeds, run = self._kernel_run(application_graph, rule)
        for t in range(self.TRIALS):
            ref = mis_matching(
                application_graph,
                Random(0),
                algorithm=EngineMIS(int(seeds[t])),
            )
            assert (
                rule.matching_edges(application_graph, run, t)
                == ref.matching
            )
            assert int(run.rounds[t]) == ref.rounds

    def test_dominating(self, application_graph):
        seeds, run = self._kernel_run(application_graph, DominatingSetRule())
        for t in range(self.TRIALS):
            ref = mis_dominating_set(
                application_graph,
                Random(0),
                algorithm=EngineMIS(int(seeds[t])),
            )
            assert run.chosen_set(t) == ref

    def test_ruling(self, application_graph):
        seeds, run = self._kernel_run(application_graph, RulingSetRule(3))
        for t in range(self.TRIALS):
            ref = ruling_set(
                application_graph,
                3,
                Random(0),
                algorithm=EngineMIS(int(seeds[t])),
            )
            assert run.chosen_set(t) == ref


class TestBitEquality:
    TRIALS = 9

    def test_dense_equals_sparse(self, rule_name, application_graph):
        rule = APPLICATION_RULES[rule_name]()
        seeds = derive_seed_block(MASTER_SEED, 0, count=self.TRIALS)
        runs = {
            backend: ApplicationFleetSimulator(
                application_graph,
                APPLICATION_RULES[rule_name](),
                backend=backend,
            ).run_fleet(seeds, validate=True)
            for backend in BACKENDS
        }
        assert rule.name == rule_name
        assert_runs_equal(runs["dense"], runs["sparse"])

    def test_batch_equals_per_trial(self, rule_name, application_graph):
        seeds = derive_seed_block(MASTER_SEED, 1, count=self.TRIALS)
        simulator = ApplicationFleetSimulator(
            application_graph, APPLICATION_RULES[rule_name]()
        )
        batch = simulator.run_fleet(seeds, validate=True)
        for trial in range(self.TRIALS):
            solo = simulator.run_fleet(seeds[trial : trial + 1])
            assert np.array_equal(solo.rounds[0:1], batch.rounds[trial : trial + 1])
            assert np.array_equal(solo.colors[0], batch.colors[trial])
            assert np.array_equal(
                solo.beeps_by_node[0], batch.beeps_by_node[trial]
            )

    def test_armada_equals_per_graph_fleet(self, rule_name):
        rule_factory = APPLICATION_RULES[rule_name]
        if rule_name == "mis-matching":
            # Armada needs equal *host* sizes — for matching, equal edge
            # counts; relabelled copies of one base graph guarantee it.
            base = gnp_random_graph(16, 0.3, Random(700))
            permutations = [
                list(range(16)),
                list(reversed(range(16))),
                [(v * 7 + 3) % 16 for v in range(16)],
            ]
            graphs = [base.relabel(p) for p in permutations]
        else:
            graphs = [
                gnp_random_graph(16, 0.3, Random(700 + g)) for g in range(3)
            ]
        seed_rows = [
            derive_seed_block(MASTER_SEED, g, 1, count=5 - g, start=g)
            for g in range(3)
        ]
        armada_runs = ApplicationArmadaSimulator(
            graphs, rule_factory()
        ).run_armada(seed_rows, validate=True)
        for graph, row, armada_run in zip(graphs, seed_rows, armada_runs):
            fleet_run = ApplicationFleetSimulator(
                graph, rule_factory()
            ).run_fleet(row, validate=True)
            assert_runs_equal(armada_run, fleet_run)

    def test_disagreement_detectable(self, rule_name):
        """Different seeds give different outputs (the equality tests
        above cannot pass vacuously)."""
        graph = gnp_random_graph(18, 0.4, Random(601))
        simulator = ApplicationFleetSimulator(
            graph, APPLICATION_RULES[rule_name]()
        )
        a = simulator.run_fleet(derive_seed_block(MASTER_SEED, 2, count=6))
        b = simulator.run_fleet(derive_seed_block(MASTER_SEED, 3, count=6))
        assert not (
            np.array_equal(a.colors, b.colors)
            and np.array_equal(a.rounds, b.rounds)
        )


class TestBatchDispatch:
    def test_strategies_agree(self, rule_name):
        graph = gnp_random_graph(16, 0.3, Random(41))
        results = {
            engine: run_batch(
                graph,
                APPLICATION_RULES[rule_name],
                trials=6,
                master_seed=97,
                engine=engine,
                rng_mode="counter",
                validate=True,
            )
            for engine in ("auto", "fleet", "loop")
        }
        for engine in ("fleet", "loop"):
            assert np.array_equal(
                results["auto"].rounds, results[engine].rounds
            )
            assert np.allclose(
                results["auto"].mean_beeps, results[engine].mean_beeps
            )

    def test_rejects_stream_mode(self, rule_name):
        graph = gnp_random_graph(10, 0.3, Random(42))
        with pytest.raises(ValueError, match="counter"):
            run_batch(
                graph,
                APPLICATION_RULES[rule_name],
                trials=2,
                master_seed=1,
                rng_mode="stream",
            )

    def test_rejects_faults(self, rule_name):
        graph = gnp_random_graph(10, 0.3, Random(42))
        with pytest.raises(ValueError, match="fault"):
            run_batch(
                graph,
                APPLICATION_RULES[rule_name],
                trials=2,
                master_seed=1,
                rng_mode="counter",
                faults=FaultModel(beep_loss_probability=0.5),
            )


class TestSweepIntegration:
    def test_cellspec_accepts_application_rules(self, rule_name):
        from repro.sweep.spec import CellSpec

        cell = CellSpec(algorithm=rule_name, n=16, trials=4)
        assert cell.execution_fingerprint()["algorithm"] == rule_name

    def test_cellspec_rejects_stream_mode(self, rule_name):
        from repro.sweep.spec import CellSpec

        with pytest.raises(ValueError, match="counter"):
            CellSpec(algorithm=rule_name, n=16, trials=4, rng_mode="stream")

    def test_cellspec_rejects_faults(self, rule_name):
        from repro.sweep.spec import CellSpec

        with pytest.raises(ValueError, match="fault"):
            CellSpec(algorithm=rule_name, n=16, trials=4, beep_loss=0.2)

    def test_fleet_trials_window_equals_full_run(self, rule_name):
        from repro.experiments.runner import run_fleet_trials

        def graph_factory(rng):
            return gnp_random_graph(14, 0.3, rng)

        full = run_fleet_trials(
            APPLICATION_RULES[rule_name], graph_factory, 6, 77, graphs=2
        )
        window = run_fleet_trials(
            APPLICATION_RULES[rule_name],
            graph_factory,
            6,
            77,
            graphs=2,
            trial_range=(2, 5),
        )
        assert full[2:5] == window

    def test_comparison_panel_accepts_applications(self):
        from repro.experiments.compare import comparison_experiment

        result = comparison_experiment(
            algorithms=("feedback", "mis-coloring"),
            sizes=(16,),
            trials=4,
        )
        series = {point.series for point in result.rounds.points}
        assert series == {"feedback", "mis-coloring"}


class TestValidity:
    @settings(max_examples=30, deadline=None, derandomize=True)
    @given(
        n=st.integers(min_value=1, max_value=24),
        p=st.floats(min_value=0.0, max_value=0.6),
        trials=st.integers(min_value=1, max_value=4),
        graph_seed=st.integers(min_value=0, max_value=50),
        backend=st.sampled_from(BACKENDS),
        name=st.sampled_from(sorted(APPLICATION_RULES)),
    )
    def test_every_trial_validates(
        self, n, p, trials, graph_seed, backend, name
    ):
        graph = gnp_random_graph(n, p, Random(graph_seed))
        seeds = derive_seed_block(MASTER_SEED, graph_seed, count=trials)
        ApplicationFleetSimulator(
            graph, APPLICATION_RULES[name](), backend=backend
        ).run_fleet(seeds, validate=True)
