"""Unit tests for the batch driver."""

import pytest

from repro.engine.batch import run_batch
from repro.engine.rules import FeedbackRule, SweepRule
from repro.graphs.structured import complete_graph, empty_graph


class TestRunBatch:
    def test_shapes_and_stats(self, random50):
        batch = run_batch(random50, FeedbackRule, trials=10, master_seed=1)
        assert batch.trials == 10
        assert batch.rounds.shape == (10,)
        assert batch.mean_beeps.shape == (10,)
        assert batch.rule_name == "feedback"
        assert batch.num_vertices == 50
        assert batch.mean_rounds > 0
        assert batch.std_rounds >= 0

    def test_reproducible(self, random50):
        a = run_batch(random50, FeedbackRule, 5, master_seed=2)
        b = run_batch(random50, FeedbackRule, 5, master_seed=2)
        assert (a.rounds == b.rounds).all()
        assert (a.mean_beeps == b.mean_beeps).all()

    def test_master_seed_changes_results(self, random50):
        a = run_batch(random50, FeedbackRule, 5, master_seed=3)
        b = run_batch(random50, FeedbackRule, 5, master_seed=4)
        assert (a.rounds != b.rounds).any()

    def test_graph_index_namespaces_seeds(self, random50):
        a = run_batch(random50, FeedbackRule, 5, master_seed=5, graph_index=0)
        b = run_batch(random50, FeedbackRule, 5, master_seed=5, graph_index=1)
        assert (a.rounds != b.rounds).any()

    def test_single_trial_std_zero(self, random50):
        batch = run_batch(random50, FeedbackRule, 1, master_seed=6)
        assert batch.std_rounds == 0.0
        assert batch.std_beeps_per_node == 0.0

    def test_trials_validation(self, random50):
        with pytest.raises(ValueError):
            run_batch(random50, FeedbackRule, 0, master_seed=7)

    def test_validate_flag(self):
        batch = run_batch(
            complete_graph(8), SweepRule, 5, master_seed=8, validate=True
        )
        assert batch.mean_rounds >= 1

    def test_empty_graph(self):
        batch = run_batch(empty_graph(0), FeedbackRule, 3, master_seed=9)
        assert batch.mean_rounds == 0.0
        assert batch.mean_beeps_per_node == 0.0
