"""Property tests for the bit-packed ``uint64`` bitboard kernels.

The bitboard backend (:mod:`repro.engine.bitboard`) replaces the fleet
engine's float32 GEMM with AND + popcount over packed adjacency rows.
The conformance suite already pins whole runs bit-for-bit against the
dense and sparse engines; this file attacks the primitives directly:

- pack/unpack is a lossless round trip on arbitrary boolean rows, and
  the trailing lane's bits at and above ``n`` are always zero (the tail
  mask the OR/popcount kernels silently rely on);
- ``neighbor_counts`` equals the float32 GEMM counts and ``neighbor_or``
  the GEMM OR on random adjacencies — including graphs with isolated and
  trailing unconnected vertices, the shapes that broke the PR-2 CSR
  ``reduceat`` segmentation;
- ``entry_or_test`` (the frontier-phase primitive) agrees with the
  brute-force definition on random entry lists;
- the runner ticks the backend's telemetry counters and transitions to
  the entry-level frontier on small counter-mode fleets.
"""

from __future__ import annotations

from random import Random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.beeping.rng import derive_seed_block
from repro.engine.bitboard import (
    BitboardKernel,
    LANE_BITS,
    lane_count,
    pack_adjacency,
    pack_bits,
    popcount,
    unpack_bits,
)
from repro.engine.fleet import FleetSimulator
from repro.engine.rules import FeedbackRule
from repro.graphs.graph import Graph
from repro.graphs.random_graphs import gnp_random_graph
from repro.graphs.structured import empty_graph, star_graph
from repro.telemetry.probes import capture


def random_flags(rows: int, n: int, seed: int, density: float) -> np.ndarray:
    """A deterministic ``(rows, n)`` boolean matrix of given density."""
    rng = np.random.default_rng(seed)
    return rng.random((rows, n)) < density


def gemm_counts(graph: Graph, flags: np.ndarray) -> np.ndarray:
    """Reference neighbour counts via the dense engines' GEMM."""
    adjacency = graph.adjacency_matrix().astype(np.float32)
    return (flags.astype(np.float32) @ adjacency).astype(np.int64)


def graph_with_tail(n: int, p: float, isolated: int, seed: int) -> Graph:
    """``G(n, p)`` followed by ``isolated`` trailing edgeless vertices.

    Trailing unconnected vertices are the regression shape from the PR-2
    CSR bug: segment-reduction kernels that key segments off the *present*
    rows silently drop them.
    """
    core = gnp_random_graph(n, p, Random(seed))
    return Graph(n + isolated, core.edges())


class TestPackUnpack:
    """pack_bits/unpack_bits: lossless, little-endian, tail-masked."""

    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(
        rows=st.integers(min_value=1, max_value=8),
        n=st.integers(min_value=1, max_value=300),
        seed=st.integers(min_value=0, max_value=2**31),
        density=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_round_trip_on_random_masks(self, rows, n, seed, density):
        flags = random_flags(rows, n, seed, density)
        packed = pack_bits(flags)
        assert packed.dtype == np.uint64
        assert packed.shape == (rows, lane_count(n))
        assert np.array_equal(unpack_bits(packed, n), flags)

    @pytest.mark.parametrize(
        "n", (1, 63, 64, 65, 127, 128, 129, 191),
        ids=lambda n: f"n={n} (n%64={n % LANE_BITS})",
    )
    def test_tail_lane_bits_above_n_are_zero(self, n):
        """All-ones rows leave bits >= n clear in the trailing lane, for
        every tail-remainder class the ISSUE calls out (0, 1, 63)."""
        packed = pack_bits(np.ones((3, n), dtype=bool))
        tail = n % LANE_BITS
        if tail:
            assert np.all(packed[:, -1] >> np.uint64(tail) == 0)
            assert np.all(
                packed[:, -1] == (np.uint64(1) << np.uint64(tail)) - np.uint64(1)
            )
        else:
            assert np.all(packed[:, -1] == np.uint64(0xFFFFFFFFFFFFFFFF))
        assert np.array_equal(unpack_bits(packed, n), np.ones((3, n), bool))

    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(
        n=st.integers(min_value=1, max_value=300),
        seed=st.integers(min_value=0, max_value=2**31),
        density=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_popcount_preserves_totals(self, n, seed, density):
        flags = random_flags(4, n, seed, density)
        lane_totals = popcount(pack_bits(flags)).sum(axis=-1, dtype=np.int64)
        assert np.array_equal(lane_totals, flags.sum(axis=-1))

    def test_bit_layout_is_little_endian(self):
        """Flag ``v`` is bit ``v % 64`` of lane ``v // 64`` — the layout
        pack_adjacency and entry_or_test address directly."""
        flags = np.zeros((1, 130), dtype=bool)
        flags[0, [0, 7, 64, 129]] = True
        packed = pack_bits(flags)
        assert packed[0, 0] == np.uint64((1 << 0) | (1 << 7))
        assert packed[0, 1] == np.uint64(1 << 0)
        assert packed[0, 2] == np.uint64(1 << (129 - 128))


class TestKernelsMatchGemm:
    """AND + popcount agrees with the float32 GEMM, bit for bit."""

    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(
        n=st.integers(min_value=1, max_value=120),
        p=st.floats(min_value=0.0, max_value=1.0),
        isolated=st.integers(min_value=0, max_value=5),
        graph_seed=st.integers(min_value=0, max_value=2**31),
        flag_seed=st.integers(min_value=0, max_value=2**31),
        density=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_neighbor_counts_match_gemm(
        self, n, p, isolated, graph_seed, flag_seed, density
    ):
        graph = graph_with_tail(n, p, isolated, graph_seed)
        kernel = BitboardKernel(graph)
        flags = random_flags(5, graph.num_vertices, flag_seed, density)
        assert np.array_equal(
            kernel.neighbor_counts(flags), gemm_counts(graph, flags)
        )

    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(
        n=st.integers(min_value=1, max_value=120),
        p=st.floats(min_value=0.0, max_value=1.0),
        isolated=st.integers(min_value=0, max_value=5),
        graph_seed=st.integers(min_value=0, max_value=2**31),
        flag_seed=st.integers(min_value=0, max_value=2**31),
        # Spans the gather/broadcast switch: the sparse end exercises the
        # reduceat fold, the dense end the chunked broadcast.
        density=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_neighbor_or_matches_gemm(
        self, n, p, isolated, graph_seed, flag_seed, density
    ):
        graph = graph_with_tail(n, p, isolated, graph_seed)
        kernel = BitboardKernel(graph)
        flags = random_flags(5, graph.num_vertices, flag_seed, density)
        assert np.array_equal(
            kernel.neighbor_or(flags), gemm_counts(graph, flags) > 0
        )

    def test_gather_and_broadcast_paths_agree(self):
        """Both neighbor_or code paths on the same input, explicitly."""
        graph = gnp_random_graph(90, 0.2, Random(11))
        kernel = BitboardKernel(graph)
        flags = random_flags(6, 90, 12, 0.5)
        assert np.array_equal(
            kernel.neighbor_or(flags), kernel._broadcast_or(flags)
        )

    @pytest.mark.parametrize(
        "graph",
        (
            empty_graph(7),
            Graph(5, [(0, 1)]),
            Graph(67, [(0, 66)]),
            star_graph(9),
        ),
        ids=("all-isolated", "trailing-isolated", "cross-lane-edge", "star"),
    )
    def test_isolated_and_trailing_vertices(self, graph):
        """The PR-2 regression shapes: rows with no neighbours must stay
        all-zero instead of inheriting the previous segment's fold."""
        kernel = BitboardKernel(graph)
        n = graph.num_vertices
        everyone = np.ones((2, n), dtype=bool)
        assert np.array_equal(
            kernel.neighbor_counts(everyone), gemm_counts(graph, everyone)
        )
        assert np.array_equal(
            kernel.neighbor_or(everyone), gemm_counts(graph, everyone) > 0
        )
        lone = np.zeros((3, n), dtype=bool)
        lone[1, n - 1] = True
        assert np.array_equal(
            kernel.neighbor_or(lone), gemm_counts(graph, lone) > 0
        )

    def test_empty_shapes(self):
        kernel = BitboardKernel(empty_graph(0))
        assert kernel.neighbor_or(np.zeros((4, 0), bool)).shape == (4, 0)
        assert kernel.neighbor_counts(np.zeros((4, 0), bool)).shape == (4, 0)
        kernel = BitboardKernel(star_graph(3))
        assert kernel.neighbor_or(np.zeros((0, 4), bool)).shape == (0, 4)

    def test_packed_adjacency_matches_matrix(self):
        graph = gnp_random_graph(130, 0.15, Random(7))
        packed = pack_adjacency(graph)
        assert np.array_equal(
            unpack_bits(packed, 130),
            graph.adjacency_matrix().astype(bool),
        )


class TestEntryOrTest:
    """The frontier primitive vs. its brute-force definition."""

    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(
        n=st.integers(min_value=1, max_value=100),
        p=st.floats(min_value=0.0, max_value=0.6),
        graph_seed=st.integers(min_value=0, max_value=2**31),
        entry_seed=st.integers(min_value=0, max_value=2**31),
        rows=st.integers(min_value=1, max_value=6),
        source_density=st.floats(min_value=0.0, max_value=0.4),
        query_density=st.floats(min_value=0.0, max_value=0.6),
    )
    def test_matches_brute_force(
        self, n, p, graph_seed, entry_seed, rows,
        source_density, query_density,
    ):
        graph = gnp_random_graph(n, p, Random(graph_seed))
        kernel = BitboardKernel(graph)
        source = random_flags(rows, n, entry_seed, source_density)
        query = random_flags(rows, n, entry_seed + 1, query_density)
        source_rows, source_cols = np.nonzero(source)
        query_rows, query_cols = np.nonzero(query)
        got = kernel.entry_or_test(
            source_rows, source_cols, query_rows, query_cols, rows
        )
        adjacency = graph.adjacency_matrix().astype(bool)
        expected = np.array(
            [
                bool(np.any(source[r] & adjacency[c]))
                for r, c in zip(query_rows, query_cols)
            ],
            dtype=bool,
        )
        assert np.array_equal(got, expected)

    def test_empty_entry_lists(self):
        kernel = BitboardKernel(star_graph(4))
        empty = np.array([], dtype=np.int64)
        some = np.array([0], dtype=np.int64)
        assert kernel.entry_or_test(empty, empty, some, some, 2).tolist() == [
            False
        ]
        assert kernel.entry_or_test(some, some, empty, empty, 2).size == 0


class TestRunnerTelemetry:
    """The bitboard runner's probes: backend counter + frontier gauges."""

    def test_backend_counter_and_frontier_transition(self):
        graph = gnp_random_graph(30, 0.3, Random(9))
        simulator = FleetSimulator(graph, backend="bitboard")
        seeds = derive_seed_block(404, 0, 1, count=4)
        with capture() as collector:
            simulator.run_fleet(FeedbackRule(), seeds, rng_mode="counter")
        assert collector.counters["engine.backend.bitboard"] == 1
        assert collector.counters["engine.fleet.runs"] == 1
        assert collector.counters["engine.fleet.trials"] == 4
        # 4 trials x 30 vertices fits the frontier budget immediately, so
        # the run must hand over to the entry-level tail exactly once.
        assert collector.counters["engine.bitboard.frontier_transitions"] == 1
        assert collector.gauges["engine.bitboard.frontier_entries"] > 0

    def test_stream_mode_stays_full_width(self):
        """Stream mode draws full-width uniform rows, so the frontier
        tail (which draws per entry) must never engage."""
        graph = gnp_random_graph(30, 0.3, Random(9))
        simulator = FleetSimulator(graph, backend="bitboard")
        seeds = derive_seed_block(404, 0, 1, count=4)
        with capture() as collector:
            simulator.run_fleet(FeedbackRule(), seeds, rng_mode="stream")
        assert collector.counters["engine.backend.bitboard"] == 1
        assert "engine.bitboard.frontier_transitions" not in collector.counters
