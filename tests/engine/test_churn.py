"""Churn: cross-engine conformance, self-repair metrics, properties.

The churn contract (``docs/robustness.md``): events land at round start
before crashes, in the order leaves → sleeps → wakes → joins → one
deterministic resolution pass that consumes no randomness.  Because the
resolution pass draws nothing, all five vectorised engines stay
bit-identical under churn in both rng modes, and a fault-free run's
bytes are untouched.  The output is a valid MIS of the final *alive*
subgraph, with per-event-round repair times and a ``recovered`` flag
for graceful round-cap degradation.
"""

from random import Random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.beeping.faults import ChurnSchedule, CrashSchedule, FaultModel
from repro.beeping.rng import RNG_MODES
from repro.engine.fleet import ArmadaSimulator, FleetSimulator
from repro.engine.rules import FeedbackRule
from repro.graphs.random_graphs import gnp_random_graph
from repro.graphs.validation import MISValidationError, verify_mis

from .conftest import ENGINE_IDS, engine_run

CHURN_EVENTS = (
    ("leave", 2, 0),
    ("leave", 2, 1),
    ("sleep", 3, 5),
    ("wake", 6, 5),
    ("join", 4, 20, (0, 3, 7)),
    ("join", 4, 21, ()),
    ("leave", 8, 20),
)

CHURN_FAULTS = FaultModel(
    churn_schedule=ChurnSchedule.from_events(CHURN_EVENTS)
)

COMBINED_FAULTS = FaultModel(
    beep_loss_probability=0.2,
    spurious_beep_probability=0.1,
    crash_schedule=CrashSchedule.from_pairs([(1, 4), (3, 9)]),
    churn_schedule=ChurnSchedule.from_events(CHURN_EVENTS),
)


def churn_graph():
    return gnp_random_graph(20, 0.3, Random(42))


def run_pair(engine_id, rng_mode, faults, seed=7701):
    """One validated churn trial on the named engine."""
    return engine_run(
        engine_id,
        churn_graph(),
        FeedbackRule,
        seed,
        validate=True,
        faults=faults,
        rng_mode=rng_mode,
    )


@pytest.mark.parametrize("faults", [CHURN_FAULTS, COMBINED_FAULTS],
                         ids=["churn-only", "combined"])
class TestChurnConformance:
    def test_engines_bit_identical(self, engine_id, rng_mode, faults):
        """Every engine must reproduce the dense engine bit for bit."""
        expected = run_pair("dense", rng_mode, faults)
        actual = run_pair(engine_id, rng_mode, faults)
        assert actual.rounds == expected.rounds
        assert actual.mis == expected.mis
        assert actual.absent == expected.absent
        assert actual.repair_rounds == expected.repair_rounds
        assert actual.recovered == expected.recovered
        assert np.array_equal(actual.beeps_by_node, expected.beeps_by_node)

    def test_result_is_mis_of_surviving_subgraph(self, engine_id, rng_mode,
                                                 faults):
        run = run_pair(engine_id, rng_mode, faults)
        universe = CHURN_FAULTS.churn_schedule.universe_graph(churn_graph())
        assert run.num_vertices == universe.num_vertices
        verify_mis(universe, run.mis, crashed=run.crashed, absent=run.absent)

    def test_repair_metrics_shape(self, engine_id, rng_mode, faults):
        run = run_pair(engine_id, rng_mode, faults)
        event_rounds = faults.churn_schedule.event_rounds()
        assert len(run.repair_rounds) == len(event_rounds)
        assert run.recovered
        for event_round, repair in zip(event_rounds, run.repair_rounds):
            assert repair >= 0
            assert event_round + repair <= run.rounds


class TestChurnSemantics:
    def test_departed_and_asleep_are_absent(self):
        run = run_pair("dense", "counter", CHURN_FAULTS)
        # leavers 0, 1 and 20; joiner 21 stays, vertex 5 woke again.
        assert {0, 1, 20} <= run.absent
        assert 21 not in run.absent
        assert 5 not in run.absent

    def test_absent_vertices_never_in_mis(self):
        run = run_pair("dense", "counter", CHURN_FAULTS)
        assert not (run.absent & run.mis)

    def test_clean_run_bytes_untouched(self):
        """The churn path must not perturb fault-free runs at all."""
        from repro.beeping.faults import NO_FAULTS

        for rng_mode in RNG_MODES:
            run = run_pair("dense", rng_mode, NO_FAULTS)
            assert run.absent == set()
            assert run.repair_rounds == ()
            assert run.recovered

    def test_round_cap_degrades_gracefully(self):
        """Hitting max_rounds mid-repair must not raise under churn:
        the run reports recovered=False instead."""
        from repro.engine.simulator import VectorizedSimulator

        simulator = VectorizedSimulator(churn_graph(), max_rounds=3)
        run = simulator.run(
            FeedbackRule(), 7701, validate=True, faults=CHURN_FAULTS,
            rng_mode="counter",
        )
        assert not run.recovered
        assert -1 in run.repair_rounds

    def test_validation_catches_absent_member(self):
        universe = CHURN_FAULTS.churn_schedule.universe_graph(churn_graph())
        run = run_pair("dense", "counter", CHURN_FAULTS)
        absent = sorted(run.absent)[0]
        with pytest.raises(MISValidationError, match="absent"):
            verify_mis(
                universe, run.mis | {absent},
                crashed=run.crashed, absent=run.absent,
            )


class TestArmadaChurn:
    @pytest.mark.parametrize("backend", ["dense", "sparse", "bitboard"])
    def test_armada_matches_fleet(self, backend):
        graphs = [churn_graph(), gnp_random_graph(20, 0.4, Random(43))]
        schedule = ChurnSchedule.from_events(
            [("leave", 2, 0), ("sleep", 3, 1), ("wake", 5, 1)]
        )
        faults = FaultModel(churn_schedule=schedule)
        seed_rows = [[11, 12], [13]]
        armada = ArmadaSimulator(graphs, backend=backend).run_armada(
            FeedbackRule(), seed_rows, validate=True, faults=faults
        )
        for graph, seeds, run in zip(graphs, seed_rows, armada):
            fleet = FleetSimulator(graph, backend=backend).run_fleet(
                FeedbackRule(), seeds, validate=True, faults=faults,
                rng_mode="counter",
            )
            for t in range(len(seeds)):
                a, f = run.trial_run(t), fleet.trial_run(t)
                assert a.rounds == f.rounds
                assert a.mis == f.mis
                assert a.absent == f.absent
                assert a.repair_rounds == f.repair_rounds
                assert np.array_equal(a.beeps_by_node, f.beeps_by_node)


def random_churn_schedule(draw, n):
    """A hypothesis-drawn coherent churn timeline over an n-vertex base."""
    events = []
    vertices = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            unique=True, min_size=0, max_size=min(4, n),
        )
    )
    for vertex in vertices:
        kind = draw(st.sampled_from(["leave", "sleep", "sleep-wake"]))
        start = draw(st.integers(min_value=0, max_value=6))
        if kind == "leave":
            events.append(("leave", start, vertex))
        elif kind == "sleep":
            events.append(("sleep", start, vertex))
        else:
            events.append(("sleep", start, vertex))
            events.append(("wake", start + draw(
                st.integers(min_value=1, max_value=4)
            ), vertex))
    joins = draw(st.integers(min_value=0, max_value=2))
    for j in range(joins):
        vertex = n + j
        neighbors = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                unique=True, min_size=0, max_size=3,
            )
        )
        events.append(
            ("join", draw(st.integers(min_value=0, max_value=6)), vertex,
             tuple(neighbors))
        )
    return ChurnSchedule.from_events(events)


@st.composite
def churn_cases(draw):
    n = draw(st.integers(min_value=2, max_value=14))
    p = draw(st.floats(min_value=0.0, max_value=1.0))
    graph_seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    run_seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    schedule = random_churn_schedule(draw, n)
    return n, p, graph_seed, run_seed, schedule


@given(case=churn_cases())
@settings(max_examples=25, deadline=None)
def test_every_engine_repairs_to_valid_mis(case):
    """Property: under any coherent churn timeline, every engine ends on
    a valid MIS of the surviving subgraph, bit-identical across engines
    in both rng modes."""
    n, p, graph_seed, run_seed, schedule = case
    graph = gnp_random_graph(n, p, Random(graph_seed))
    faults = FaultModel(churn_schedule=schedule)
    for rng_mode in RNG_MODES:
        baseline = None
        for engine_id in ENGINE_IDS:
            run = engine_run(
                engine_id, graph, FeedbackRule, run_seed,
                validate=True, faults=faults, rng_mode=rng_mode,
            )
            if baseline is None:
                baseline = run
            else:
                assert run.rounds == baseline.rounds
                assert run.mis == baseline.mis
                assert run.absent == baseline.absent
                assert run.repair_rounds == baseline.repair_rounds
        universe = schedule.universe_graph(graph)
        verify_mis(universe, baseline.mis, absent=baseline.absent)
