"""Cross-engine conformance: all fast engines are one engine, observably.

On a shared per-trial seed, the dense, sparse and fleet (both backends)
engines must agree **bit for bit** — same round count, same MIS, same
per-node beep counts — because they draw the identical random stream and
compute the identical ``heard`` booleans.  The per-node reference engine
consumes randomness differently, so it is held to MIS validity and
distributional agreement instead.

These tests are the refactoring guard-rail for the engine package: any
semantic drift in one engine (round ordering, probability updates, seed
derivation) breaks the agreement immediately.
"""

from __future__ import annotations

from random import Random

import numpy as np
import pytest

from repro.algorithms.afek_sweep import AfekSweepMIS
from repro.algorithms.feedback import FeedbackMIS
from repro.beeping.rng import derive_seed
from repro.engine.batch import run_batch, run_batch_loop
from repro.engine.rules import FeedbackRule
from repro.graphs.random_graphs import gnp_random_graph
from repro.graphs.validation import verify_mis

from tests.engine.conftest import ENGINE_IDS, engine_run, make_rule

RULE_NAMES = ("feedback", "afek-sweep", "afek-global")
MASTER_SEED = 0xC04F


class TestBitEquality:
    """Dense == sparse == fleet-dense == fleet-sparse, bit for bit."""

    @pytest.mark.parametrize("rule_name", RULE_NAMES)
    def test_all_engines_agree_exactly(self, conformance_graph, rule_name):
        graph = conformance_graph
        seed = derive_seed(MASTER_SEED, graph.num_vertices, graph.num_edges)
        runs = {
            engine_id: engine_run(
                engine_id,
                graph,
                lambda: make_rule(rule_name, graph),
                seed,
                validate=True,
            )
            for engine_id in ENGINE_IDS
        }
        baseline = runs["dense"]
        for engine_id, run in runs.items():
            assert run.rounds == baseline.rounds, engine_id
            assert run.mis == baseline.mis, engine_id
            assert np.array_equal(
                run.beeps_by_node, baseline.beeps_by_node
            ), engine_id

    def test_disagreement_is_detectable(self, conformance_graph):
        """Different seeds give different traces — equality is not vacuous."""
        graph = conformance_graph
        if graph.num_edges == 0:
            pytest.skip("beep traces on edgeless graphs are degenerate")
        differing = 0
        for offset in range(5):
            a = engine_run("dense", graph, FeedbackRule, 1000 + offset)
            b = engine_run("dense", graph, FeedbackRule, 2000 + offset)
            if a.rounds != b.rounds or not np.array_equal(
                a.beeps_by_node, b.beeps_by_node
            ):
                differing += 1
        assert differing > 0


class TestBatchConformance:
    """The fleet batch path reproduces the per-trial loop bit for bit."""

    TRIALS = 12

    @pytest.mark.parametrize("rule_name", ("feedback", "afek-sweep"))
    @pytest.mark.parametrize("graph_index", (0, 3))
    def test_fleet_batch_matches_loop(
        self, conformance_graph, rule_name, graph_index
    ):
        graph = conformance_graph
        loop = run_batch_loop(
            graph,
            lambda: make_rule(rule_name, graph),
            self.TRIALS,
            MASTER_SEED,
            graph_index=graph_index,
        )
        fleet = run_batch(
            graph,
            lambda: make_rule(rule_name, graph),
            self.TRIALS,
            MASTER_SEED,
            graph_index=graph_index,
            engine="fleet",
        )
        assert fleet.rule_name == loop.rule_name
        assert np.array_equal(fleet.rounds, loop.rounds)
        assert np.array_equal(fleet.mean_beeps, loop.mean_beeps)

    def test_auto_engine_matches_explicit_fleet(self, conformance_graph):
        graph = conformance_graph
        auto = run_batch(graph, FeedbackRule, self.TRIALS, MASTER_SEED)
        fleet = run_batch(
            graph, FeedbackRule, self.TRIALS, MASTER_SEED, engine="fleet"
        )
        assert np.array_equal(auto.rounds, fleet.rounds)
        assert np.array_equal(auto.mean_beeps, fleet.mean_beeps)


class TestReferenceAgreement:
    """The per-node reference engine agrees in law, not bit for bit."""

    TRIALS = 40

    @pytest.mark.parametrize(
        "algorithm_factory,rule_name",
        [(FeedbackMIS, "feedback"), (AfekSweepMIS, "afek-sweep")],
    )
    def test_distributional_agreement_all_engines(
        self, engine_id, algorithm_factory, rule_name
    ):
        graph = gnp_random_graph(30, 0.3, Random(77))
        ref_rounds = []
        ref_beeps = []
        for t in range(self.TRIALS):
            run = algorithm_factory().run(graph, Random(40_000 + t))
            verify_mis(graph, run.mis)
            ref_rounds.append(run.rounds)
            ref_beeps.append(run.mean_beeps_per_node)
        eng_rounds = []
        eng_beeps = []
        for t in range(self.TRIALS):
            run = engine_run(
                engine_id,
                graph,
                lambda: make_rule(rule_name, graph),
                derive_seed(MASTER_SEED, 7, t),
                validate=True,
            )
            eng_rounds.append(run.rounds)
            eng_beeps.append(run.mean_beeps_per_node)
        ref_mean_rounds = sum(ref_rounds) / self.TRIALS
        eng_mean_rounds = sum(eng_rounds) / self.TRIALS
        ref_mean_beeps = sum(ref_beeps) / self.TRIALS
        eng_mean_beeps = sum(eng_beeps) / self.TRIALS
        # ~4 standard errors at 40 trials of a few-round-std distribution.
        assert eng_mean_rounds == pytest.approx(ref_mean_rounds, rel=0.35)
        assert eng_mean_beeps == pytest.approx(
            ref_mean_beeps, rel=0.35, abs=0.5
        )
