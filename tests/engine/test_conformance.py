"""Cross-engine conformance: all fast engines are one engine, observably.

On a shared per-trial seed *and rng mode*, the dense, sparse and fleet
(dense, sparse and bitboard backends) engines must agree **bit for bit**
— same round count,
same MIS, same per-node beep counts — because they draw the identical
uniforms and compute the identical ``heard`` booleans.  In ``"stream"``
mode that hinges on a shared sequential draw order (beep uniforms, loss
uniforms, spurious uniforms); in ``"counter"`` mode every uniform is a
pure function of its counter, so the order is moot by construction.  The
agreement extends to fault-injected runs and, in counter mode, to the
block-diagonal armada batch.  The per-node reference engine consumes
randomness differently, so it is held to MIS validity and distributional
agreement instead.

These tests are the refactoring guard-rail for the engine package: any
semantic drift in one engine (round ordering, probability updates, seed
derivation, fault sampling, armada block stacking) breaks the agreement
immediately.
"""

from __future__ import annotations

from random import Random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.afek_sweep import AfekSweepMIS
from repro.algorithms.feedback import FeedbackMIS
from repro.beeping.faults import CrashSchedule, FaultModel, NO_FAULTS
from repro.beeping.rng import derive_seed
from repro.engine.batch import run_batch, run_batch_loop
from repro.engine.rules import FeedbackRule
from repro.graphs.random_graphs import gnp_random_graph
from repro.graphs.validation import (
    is_independent_set,
    uncovered_vertices,
    verify_mis,
)

from tests.engine.conftest import ENGINE_IDS, engine_run, make_rule

RULE_NAMES = ("feedback", "afek-sweep", "afek-global")
MASTER_SEED = 0xC04F


class TestBitEquality:
    """Dense == sparse == fleet-dense == fleet-sparse == fleet-bitboard,
    bit for bit, within each rng mode."""

    @pytest.mark.parametrize("rule_name", RULE_NAMES)
    def test_all_engines_agree_exactly(
        self, conformance_graph, rule_name, rng_mode
    ):
        graph = conformance_graph
        seed = derive_seed(MASTER_SEED, graph.num_vertices, graph.num_edges)
        runs = {
            engine_id: engine_run(
                engine_id,
                graph,
                lambda: make_rule(rule_name, graph),
                seed,
                validate=True,
                rng_mode=rng_mode,
            )
            for engine_id in ENGINE_IDS
        }
        baseline = runs["dense"]
        for engine_id, run in runs.items():
            assert run.rounds == baseline.rounds, engine_id
            assert run.mis == baseline.mis, engine_id
            assert np.array_equal(
                run.beeps_by_node, baseline.beeps_by_node
            ), engine_id

    def test_disagreement_is_detectable(self, conformance_graph):
        """Different seeds give different traces — equality is not vacuous."""
        graph = conformance_graph
        if graph.num_edges == 0:
            pytest.skip("beep traces on edgeless graphs are degenerate")
        differing = 0
        for offset in range(5):
            a = engine_run("dense", graph, FeedbackRule, 1000 + offset)
            b = engine_run("dense", graph, FeedbackRule, 2000 + offset)
            if a.rounds != b.rounds or not np.array_equal(
                a.beeps_by_node, b.beeps_by_node
            ):
                differing += 1
        assert differing > 0

    def test_modes_draw_different_uniforms(self, conformance_graph):
        """Stream and counter are distinct disciplines — if they ever
        collided the mode key in the sweep cache would be redundant."""
        graph = conformance_graph
        if graph.num_edges == 0:
            pytest.skip("beep traces on edgeless graphs are degenerate")
        differing = 0
        for offset in range(5):
            stream = engine_run(
                "dense", graph, FeedbackRule, 5000 + offset,
                rng_mode="stream",
            )
            counter = engine_run(
                "dense", graph, FeedbackRule, 5000 + offset,
                rng_mode="counter",
            )
            if stream.rounds != counter.rounds or not np.array_equal(
                stream.beeps_by_node, counter.beeps_by_node
            ):
                differing += 1
        assert differing > 0

    def test_rejects_unknown_rng_mode(self):
        graph = gnp_random_graph(10, 0.4, Random(3))
        with pytest.raises(ValueError, match="rng_mode"):
            engine_run("dense", graph, FeedbackRule, 1, rng_mode="quantum")


class TestBatchConformance:
    """The fleet batch path reproduces the per-trial loop bit for bit."""

    TRIALS = 12

    @pytest.mark.parametrize("rule_name", ("feedback", "afek-sweep"))
    @pytest.mark.parametrize("graph_index", (0, 3))
    def test_fleet_batch_matches_loop(
        self, conformance_graph, rule_name, graph_index, rng_mode
    ):
        graph = conformance_graph
        loop = run_batch_loop(
            graph,
            lambda: make_rule(rule_name, graph),
            self.TRIALS,
            MASTER_SEED,
            graph_index=graph_index,
            rng_mode=rng_mode,
        )
        fleet = run_batch(
            graph,
            lambda: make_rule(rule_name, graph),
            self.TRIALS,
            MASTER_SEED,
            graph_index=graph_index,
            engine="fleet",
            rng_mode=rng_mode,
        )
        assert fleet.rule_name == loop.rule_name
        assert np.array_equal(fleet.rounds, loop.rounds)
        assert np.array_equal(fleet.mean_beeps, loop.mean_beeps)

    def test_auto_engine_matches_explicit_fleet(self, conformance_graph):
        graph = conformance_graph
        auto = run_batch(graph, FeedbackRule, self.TRIALS, MASTER_SEED)
        fleet = run_batch(
            graph, FeedbackRule, self.TRIALS, MASTER_SEED, engine="fleet"
        )
        assert np.array_equal(auto.rounds, fleet.rounds)
        assert np.array_equal(auto.mean_beeps, fleet.mean_beeps)


FAULT_MODELS = {
    "beep-loss": FaultModel(beep_loss_probability=0.3),
    "spurious": FaultModel(spurious_beep_probability=0.2),
    "crashes": FaultModel(
        crash_schedule=CrashSchedule.from_pairs(((1, 0), (1, 3), (2, 6)))
    ),
    "loss+spurious": FaultModel(
        beep_loss_probability=0.2, spurious_beep_probability=0.1
    ),
    "all-three": FaultModel(
        beep_loss_probability=0.15,
        spurious_beep_probability=0.1,
        crash_schedule=CrashSchedule.from_pairs(((0, 2), (3, 5))),
    ),
}


class TestFaultConformance:
    """Fault injection preserves the four-way bit-equality."""

    @pytest.mark.parametrize(
        "fault_id", list(FAULT_MODELS), ids=list(FAULT_MODELS)
    )
    @pytest.mark.parametrize("rule_name", ("feedback", "afek-sweep"))
    def test_all_engines_agree_exactly_under_faults(
        self, conformance_graph, rule_name, fault_id, rng_mode
    ):
        graph = conformance_graph
        faults = FAULT_MODELS[fault_id]
        fault_index = list(FAULT_MODELS).index(fault_id)
        seed = derive_seed(
            MASTER_SEED, graph.num_vertices, graph.num_edges, fault_index
        )
        runs = {
            engine_id: engine_run(
                engine_id,
                graph,
                lambda: make_rule(rule_name, graph),
                seed,
                validate=True,
                faults=faults,
                rng_mode=rng_mode,
            )
            for engine_id in ENGINE_IDS
        }
        baseline = runs["dense"]
        for engine_id, run in runs.items():
            assert run.rounds == baseline.rounds, engine_id
            assert run.mis == baseline.mis, engine_id
            assert run.crashed == baseline.crashed, engine_id
            assert np.array_equal(
                run.beeps_by_node, baseline.beeps_by_node
            ), engine_id

    def test_fault_free_model_changes_nothing(self, engine_id):
        """NO_FAULTS draws no extra randomness: identical to no argument."""
        graph = gnp_random_graph(30, 0.3, Random(5))
        plain = engine_run(graph=graph, engine_id=engine_id,
                           rule_factory=FeedbackRule, seed=91)
        explicit = engine_run(graph=graph, engine_id=engine_id,
                              rule_factory=FeedbackRule, seed=91,
                              faults=NO_FAULTS)
        assert plain.rounds == explicit.rounds
        assert plain.mis == explicit.mis
        assert np.array_equal(plain.beeps_by_node, explicit.beeps_by_node)

    def test_noise_actually_perturbs_the_run(self):
        """Fault equality is not vacuous: noise changes some trace."""
        graph = gnp_random_graph(30, 0.4, Random(8))
        differing = 0
        for offset in range(5):
            clean = engine_run("dense", graph, FeedbackRule, 3000 + offset)
            noisy = engine_run(
                "dense", graph, FeedbackRule, 3000 + offset,
                faults=FaultModel(beep_loss_probability=0.5),
            )
            if clean.rounds != noisy.rounds or not np.array_equal(
                clean.beeps_by_node, noisy.beeps_by_node
            ):
                differing += 1
        assert differing > 0

    def test_total_loss_still_terminates_and_agrees(self):
        """loss=1.0 (silent feedback channel) on a low-degree graph: the
        run degrades but terminates, and the engines still agree."""
        from repro.graphs.structured import grid_graph

        graph = grid_graph(5, 4)
        faults = FaultModel(beep_loss_probability=1.0)
        runs = {
            engine_id: engine_run(
                engine_id, graph, FeedbackRule, 555, validate=True,
                faults=faults,
            )
            for engine_id in ENGINE_IDS
        }
        baseline = runs["dense"]
        for engine_id, run in runs.items():
            assert run.rounds == baseline.rounds, engine_id
            assert run.mis == baseline.mis, engine_id

    def test_crashed_vertices_recorded_and_excluded(self):
        """A crash before any beep keeps the vertex out of the MIS."""
        graph = gnp_random_graph(20, 0.3, Random(12))
        faults = FaultModel(
            crash_schedule=CrashSchedule.from_pairs(((0, 4), (0, 11)))
        )
        run = engine_run(
            "fleet-dense", graph, FeedbackRule, 77, validate=True,
            faults=faults,
        )
        assert run.crashed == {4, 11}
        assert not run.mis & run.crashed

    @pytest.mark.parametrize("rule_name", ("feedback", "afek-sweep"))
    def test_fleet_batch_matches_loop_under_faults(self, rule_name, rng_mode):
        graph = gnp_random_graph(40, 0.3, Random(21))
        faults = FaultModel(
            beep_loss_probability=0.2,
            spurious_beep_probability=0.1,
            crash_schedule=CrashSchedule.from_pairs(((2, 1),)),
        )
        loop = run_batch_loop(
            graph,
            lambda: make_rule(rule_name, graph),
            12,
            MASTER_SEED,
            faults=faults,
            rng_mode=rng_mode,
        )
        fleet = run_batch(
            graph,
            lambda: make_rule(rule_name, graph),
            12,
            MASTER_SEED,
            engine="fleet",
            faults=faults,
            rng_mode=rng_mode,
        )
        assert np.array_equal(fleet.rounds, loop.rounds)
        assert np.array_equal(fleet.mean_beeps, loop.mean_beeps)


class TestArmadaConformance:
    """The block-diagonal armada batch is bit-identical to the per-graph
    counter-mode fleet runs it replaces."""

    @pytest.mark.parametrize("rule_name", ("feedback", "afek-sweep"))
    @pytest.mark.parametrize("backend", ("dense", "sparse", "bitboard"))
    @pytest.mark.parametrize(
        "fault_id", (None, "crashes", "loss+spurious", "all-three"),
        ids=("fault-free", "crashes", "loss+spurious", "all-three"),
    )
    def test_armada_matches_per_graph_fleet(self, backend, fault_id, rule_name):
        from repro.beeping.rng import derive_seed_block
        from repro.engine.fleet import ArmadaSimulator, FleetSimulator

        faults = NO_FAULTS if fault_id is None else FAULT_MODELS[fault_id]
        graphs = [
            gnp_random_graph(22, 0.3, Random(900 + g)) for g in range(3)
        ]
        # Ragged groups, like a trial_range-windowed cell.
        seed_rows = [
            derive_seed_block(MASTER_SEED, g, 1, count=5 - g, start=g)
            for g in range(3)
        ]
        armada = ArmadaSimulator(graphs, backend=backend)
        assert armada.backend == backend
        runs = armada.run_armada(
            make_rule(rule_name, graphs[0]), seed_rows, validate=True,
            faults=faults,
        )
        for graph, row, run in zip(graphs, seed_rows, runs):
            lone = FleetSimulator(graph, backend=backend).run_fleet(
                make_rule(rule_name, graph), row, validate=True,
                faults=faults, rng_mode="counter",
            )
            assert np.array_equal(run.rounds, lone.rounds)
            assert np.array_equal(run.membership, lone.membership)
            assert np.array_equal(run.beeps_by_node, lone.beeps_by_node)
            for t in range(run.trials):
                assert run.crashed_set(t) == lone.crashed_set(t)

    def test_armada_backends_agree(self):
        from repro.beeping.rng import derive_seed_block
        from repro.engine.fleet import ArmadaSimulator
        from repro.graphs.structured import empty_graph, grid_graph

        # Same n, structurally different graphs — including an edgeless
        # one, whose trials finish in a single round.
        graphs = [
            grid_graph(4, 5),
            gnp_random_graph(20, 0.4, Random(31)),
            empty_graph(20),
        ]
        seed_rows = [
            derive_seed_block(77, g, 1, count=3) for g in range(3)
        ]
        dense = ArmadaSimulator(graphs, backend="dense").run_armada(
            FeedbackRule(), seed_rows, validate=True
        )
        for backend in ("sparse", "bitboard"):
            other = ArmadaSimulator(graphs, backend=backend).run_armada(
                FeedbackRule(), seed_rows, validate=True
            )
            for d, o in zip(dense, other):
                assert np.array_equal(d.rounds, o.rounds), backend
                assert np.array_equal(d.membership, o.membership), backend
                assert np.array_equal(d.beeps_by_node, o.beeps_by_node), backend


@settings(max_examples=40, deadline=None, derandomize=True)
@given(
    n=st.integers(min_value=1, max_value=40),
    edge_probability=st.floats(min_value=0.0, max_value=1.0),
    graph_seed=st.integers(min_value=0, max_value=2**31),
    trial_seed=st.integers(min_value=0, max_value=2**31),
    # Heavy loss on a dense graph approaches the no-feedback regime whose
    # expected round count is exponential in the degree; 0.6 keeps every
    # draw comfortably inside the round budget.
    loss=st.floats(min_value=0.0, max_value=0.6),
    spurious=st.floats(min_value=0.0, max_value=0.4),
    crash_pairs=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=6),
            st.integers(min_value=0, max_value=39),
        ),
        max_size=6,
    ),
    engine_id=st.sampled_from(ENGINE_IDS),
)
def test_faulty_runs_still_output_valid_independent_sets(
    n, edge_probability, graph_seed, trial_seed, loss, spurious, crash_pairs,
    engine_id,
):
    """Whatever the noise, the output is independent and maximal over
    the survivors — noise may slow the run down but never corrupt it."""
    graph = gnp_random_graph(n, edge_probability, Random(graph_seed))
    faults = FaultModel(
        beep_loss_probability=loss,
        spurious_beep_probability=spurious,
        crash_schedule=CrashSchedule.from_pairs(crash_pairs),
    )
    run = engine_run(
        engine_id, graph, FeedbackRule, trial_seed, max_rounds=50_000,
        faults=faults,
    )
    assert is_independent_set(graph, run.mis)
    assert not run.mis & run.crashed
    assert run.crashed <= set(range(n))
    uncovered = set(uncovered_vertices(graph, run.mis))
    assert uncovered <= run.crashed
    # And the crash-aware verifier agrees.
    verify_mis(graph, run.mis, crashed=run.crashed)


class TestReferenceAgreement:
    """The per-node reference engine agrees in law, not bit for bit."""

    TRIALS = 40

    @pytest.mark.parametrize(
        "algorithm_factory,rule_name",
        [(FeedbackMIS, "feedback"), (AfekSweepMIS, "afek-sweep")],
    )
    def test_distributional_agreement_all_engines(
        self, engine_id, algorithm_factory, rule_name
    ):
        graph = gnp_random_graph(30, 0.3, Random(77))
        ref_rounds = []
        ref_beeps = []
        for t in range(self.TRIALS):
            run = algorithm_factory().run(graph, Random(40_000 + t))
            verify_mis(graph, run.mis)
            ref_rounds.append(run.rounds)
            ref_beeps.append(run.mean_beeps_per_node)
        eng_rounds = []
        eng_beeps = []
        for t in range(self.TRIALS):
            run = engine_run(
                engine_id,
                graph,
                lambda: make_rule(rule_name, graph),
                derive_seed(MASTER_SEED, 7, t),
                validate=True,
            )
            eng_rounds.append(run.rounds)
            eng_beeps.append(run.mean_beeps_per_node)
        ref_mean_rounds = sum(ref_rounds) / self.TRIALS
        eng_mean_rounds = sum(eng_rounds) / self.TRIALS
        ref_mean_beeps = sum(ref_beeps) / self.TRIALS
        eng_mean_beeps = sum(eng_beeps) / self.TRIALS
        # ~4 standard errors at 40 trials of a few-round-std distribution.
        assert eng_mean_rounds == pytest.approx(ref_mean_rounds, rel=0.35)
        assert eng_mean_beeps == pytest.approx(
            ref_mean_beeps, rel=0.35, abs=0.5
        )
