"""Cross-validation of the reference and vectorised engines.

The two engines consume randomness differently (Python Random per node vs
one numpy generator), so agreement is checked at two levels:

1. **Exact agreement on degenerate inputs** where randomness is irrelevant
   (empty graphs, forced outcomes).
2. **Distributional agreement** on random graphs: mean round counts and
   mean beeps per node over independent trials must match within a tolerance
   that the trial count makes sound.
"""

from random import Random

import pytest

from repro.algorithms.afek_sweep import AfekSweepMIS
from repro.algorithms.feedback import FeedbackMIS
from repro.engine.batch import run_batch
from repro.engine.rules import FeedbackRule, SweepRule
from repro.engine.simulator import VectorizedSimulator
from repro.graphs.random_graphs import gnp_random_graph
from repro.graphs.structured import empty_graph, grid_graph


class TestExactAgreement:
    def test_isolated_vertices(self):
        graph = empty_graph(7)
        reference = FeedbackMIS().run(graph, Random(1))
        vectorised = VectorizedSimulator(graph).run(FeedbackRule(), 1)
        # Both must finish with every vertex joining; round counts depend
        # only on per-vertex geometric(1/2) draws so compare sets exactly.
        assert reference.mis == vectorised.mis == set(range(7))

    def test_two_cliques_one_winner_each(self):
        from repro.graphs.cliques import disjoint_cliques

        graph = disjoint_cliques([3, 3])
        for seed in range(5):
            reference = FeedbackMIS().run(graph, Random(seed))
            vectorised = VectorizedSimulator(graph).run(
                FeedbackRule(), seed, validate=True
            )
            assert len(reference.mis) == len(vectorised.mis) == 2


class TestDistributionalAgreement:
    TRIALS = 60

    def _reference_means(self, graph, algorithm_factory):
        rounds = []
        beeps = []
        for t in range(self.TRIALS):
            run = algorithm_factory().run(graph, Random(10_000 + t))
            rounds.append(run.rounds)
            beeps.append(run.mean_beeps_per_node)
        return (
            sum(rounds) / len(rounds),
            sum(beeps) / len(beeps),
        )

    def _vectorised_means(self, graph, rule_factory):
        batch = run_batch(graph, rule_factory, self.TRIALS, master_seed=77)
        return batch.mean_rounds, batch.mean_beeps_per_node

    @pytest.mark.parametrize(
        "algorithm_factory,rule_factory",
        [(FeedbackMIS, FeedbackRule), (AfekSweepMIS, SweepRule)],
    )
    def test_random_graph_agreement(self, algorithm_factory, rule_factory):
        graph = gnp_random_graph(40, 0.5, Random(55))
        ref_rounds, ref_beeps = self._reference_means(graph, algorithm_factory)
        vec_rounds, vec_beeps = self._vectorised_means(graph, rule_factory)
        # Means over 60 trials of a distribution with std of a few rounds:
        # 35% relative tolerance is ~4 standard errors.
        assert vec_rounds == pytest.approx(ref_rounds, rel=0.35)
        assert vec_beeps == pytest.approx(ref_beeps, rel=0.35, abs=0.5)

    def test_grid_agreement(self):
        graph = grid_graph(6, 6)
        ref_rounds, ref_beeps = self._reference_means(graph, FeedbackMIS)
        vec_rounds, vec_beeps = self._vectorised_means(graph, FeedbackRule)
        assert vec_rounds == pytest.approx(ref_rounds, rel=0.35)
        assert vec_beeps == pytest.approx(ref_beeps, rel=0.35, abs=0.5)

    def test_mis_size_distribution_agreement(self):
        graph = gnp_random_graph(40, 0.5, Random(56))
        reference_sizes = [
            len(FeedbackMIS().run(graph, Random(20_000 + t)).mis)
            for t in range(self.TRIALS)
        ]
        simulator = VectorizedSimulator(graph)
        vectorised_sizes = [
            len(simulator.run(FeedbackRule(), 30_000 + t).mis)
            for t in range(self.TRIALS)
        ]
        ref_mean = sum(reference_sizes) / self.TRIALS
        vec_mean = sum(vectorised_sizes) / self.TRIALS
        assert vec_mean == pytest.approx(ref_mean, rel=0.25)
