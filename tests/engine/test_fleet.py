"""Unit tests for the trial-parallel fleet engine."""

from __future__ import annotations

from random import Random

import numpy as np
import pytest

from repro.beeping.rng import derive_seed, derive_seed_block
from repro.engine.batch import run_batch, run_batch_loop
from repro.engine.fleet import DENSE_VERTEX_LIMIT, FleetSimulator
from repro.engine.rules import FeedbackRule, ProbabilityRule
from repro.engine.simulator import VectorizedSimulator
from repro.graphs.random_graphs import gnp_random_graph
from repro.graphs.structured import empty_graph, grid_graph
from repro.graphs.validation import verify_mis


class _StatefulRule(ProbabilityRule):
    """A rule that keeps per-run mutable state: not trial-parallel."""

    trial_parallel = False

    def __init__(self):
        self._halvings = 0

    @property
    def name(self):
        return "stateful-test-rule"

    def initial(self, num_vertices):
        return np.full(num_vertices, 0.5)

    def update(self, probabilities, heard, active, round_index):
        self._halvings += 1
        return np.where(heard, probabilities / 2, probabilities)


class TestConstruction:
    def test_backend_auto_resolution(self):
        small = FleetSimulator(grid_graph(3, 3))
        assert small.backend == "dense"
        large = FleetSimulator(empty_graph(DENSE_VERTEX_LIMIT + 1))
        assert large.backend == "sparse"

    def test_backend_override(self):
        assert FleetSimulator(grid_graph(3, 3), backend="sparse").backend == "sparse"

    def test_rejects_bad_backend(self):
        with pytest.raises(ValueError, match="backend"):
            FleetSimulator(grid_graph(3, 3), backend="csr")

    def test_rejects_bad_max_rounds(self):
        with pytest.raises(ValueError, match="max_rounds"):
            FleetSimulator(grid_graph(3, 3), max_rounds=0)


class TestRunFleet:
    def test_rejects_empty_seed_list(self):
        with pytest.raises(ValueError, match="seed"):
            FleetSimulator(grid_graph(3, 3)).run_fleet(FeedbackRule(), [])

    def test_rejects_stateful_rule(self):
        with pytest.raises(ValueError, match="trial-parallel"):
            FleetSimulator(grid_graph(3, 3)).run_fleet(_StatefulRule(), [1, 2])

    def test_max_rounds_enforced(self):
        with pytest.raises(RuntimeError, match="exceeded"):
            FleetSimulator(grid_graph(4, 4), max_rounds=1).run_fleet(
                FeedbackRule(), [0, 1, 2]
            )

    def test_empty_graph_finishes_in_zero_rounds(self):
        run = FleetSimulator(empty_graph(0)).run_fleet(FeedbackRule(), [5, 6])
        assert run.num_vertices == 0
        assert list(run.rounds) == [0, 0]
        assert run.mean_beeps.tolist() == [0.0, 0.0]

    def test_isolated_vertices_all_join(self):
        run = FleetSimulator(empty_graph(6)).run_fleet(
            FeedbackRule(), derive_seed_block(11, 0, count=4)
        )
        assert run.membership.all()
        assert (run.rounds >= 1).all()

    def test_per_trial_rounds_match_per_trial_engine(self):
        """The alive-mask must freeze each trial at its own round count."""
        graph = gnp_random_graph(25, 0.3, Random(9))
        seeds = [derive_seed(31, 0, t) for t in range(8)]
        fleet = FleetSimulator(graph).run_fleet(FeedbackRule(), seeds)
        single = VectorizedSimulator(graph)
        for t, seed in enumerate(seeds):
            reference = single.run(FeedbackRule(), seed)
            assert int(fleet.rounds[t]) == reference.rounds
            assert fleet.mis_set(t) == reference.mis
            assert np.array_equal(fleet.beeps_by_node[t], reference.beeps_by_node)
        # trials genuinely differ in length, so the mask is exercised
        assert len(set(fleet.rounds.tolist())) > 1

    def test_validate_flag_verifies_every_trial(self):
        graph = gnp_random_graph(20, 0.4, Random(12))
        run = FleetSimulator(graph).run_fleet(
            FeedbackRule(), [3, 4, 5], validate=True
        )
        for t in range(run.trials):
            verify_mis(graph, run.mis_set(t))

    def test_record_beeps_history(self):
        graph = grid_graph(4, 4)
        run = FleetSimulator(graph).run_fleet(
            FeedbackRule(), [7, 8], record_beeps=True
        )
        history = run.beep_history
        assert history is not None
        assert history.shape == (int(run.rounds.max()), 2, 16)
        # The history must re-aggregate to the per-node beep totals.
        assert np.array_equal(history.sum(axis=0), run.beeps_by_node)
        # A finished trial beeps nowhere after its final round.
        for t in range(2):
            assert not history[int(run.rounds[t]):, t, :].any()

    def test_trial_run_packaging(self):
        graph = grid_graph(3, 4)
        run = FleetSimulator(graph).run_fleet(FeedbackRule(), [21])
        packaged = run.trial_run(0)
        assert packaged.rule_name == "feedback"
        assert packaged.num_vertices == 12
        assert packaged.rounds == int(run.rounds[0])
        assert packaged.mis == run.mis_set(0)
        assert packaged.mean_beeps_per_node == pytest.approx(
            float(run.mean_beeps[0])
        )


class TestBatchDispatch:
    def test_auto_falls_back_to_loop_for_stateful_rules(self):
        graph = grid_graph(3, 3)
        auto = run_batch(graph, _StatefulRule, 4, master_seed=5)
        loop = run_batch_loop(graph, _StatefulRule, 4, master_seed=5)
        assert np.array_equal(auto.rounds, loop.rounds)
        assert np.array_equal(auto.mean_beeps, loop.mean_beeps)

    def test_explicit_fleet_rejects_stateful_rule(self):
        with pytest.raises(ValueError, match="trial-parallel"):
            run_batch(
                grid_graph(3, 3), _StatefulRule, 4, master_seed=5, engine="fleet"
            )

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="engine"):
            run_batch(
                grid_graph(3, 3), FeedbackRule, 4, master_seed=5, engine="gpu"
            )

    def test_rejects_zero_trials(self):
        with pytest.raises(ValueError, match="trials"):
            run_batch(grid_graph(3, 3), FeedbackRule, 0, master_seed=5)


class TestArmadaSimulator:
    """Construction, validation and batching rules of the armada."""

    def _graphs(self, count=3, n=15):
        return [gnp_random_graph(n, 0.4, Random(500 + g)) for g in range(count)]

    def test_rejects_empty_graph_list(self):
        from repro.engine.fleet import ArmadaSimulator

        with pytest.raises(ValueError, match="at least one graph"):
            ArmadaSimulator([])

    def test_rejects_mixed_vertex_counts(self):
        from repro.engine.fleet import ArmadaSimulator

        with pytest.raises(ValueError, match="vertex count"):
            ArmadaSimulator([grid_graph(3, 3), grid_graph(3, 4)])

    def test_rejects_bad_backend_and_max_rounds(self):
        from repro.engine.fleet import ArmadaSimulator

        with pytest.raises(ValueError, match="backend"):
            ArmadaSimulator(self._graphs(), backend="csr")
        with pytest.raises(ValueError, match="max_rounds"):
            ArmadaSimulator(self._graphs(), max_rounds=0)

    def test_auto_backend_respects_memory_budget(self):
        from repro.engine.fleet import ArmadaSimulator

        small = ArmadaSimulator(self._graphs(count=2, n=10))
        assert small.backend == "dense"
        # Many copies of a large graph overflow the dense stack budget
        # even though each graph alone would resolve dense.
        n = DENSE_VERTEX_LIMIT // 2
        wide = ArmadaSimulator([empty_graph(n) for _ in range(5)])
        assert wide.backend == "sparse"

    def test_rejects_mismatched_seed_rows(self):
        from repro.engine.fleet import ArmadaSimulator

        armada = ArmadaSimulator(self._graphs(count=2))
        with pytest.raises(ValueError, match="one seed row per graph"):
            armada.run_armada(FeedbackRule(), [[1, 2]])
        with pytest.raises(ValueError, match="at least one seed"):
            armada.run_armada(FeedbackRule(), [[1, 2], []])

    def test_rejects_non_trial_parallel_rule(self):
        from repro.engine.fleet import ArmadaSimulator

        armada = ArmadaSimulator(self._graphs(count=2))
        with pytest.raises(ValueError, match="trial-parallel"):
            armada.run_armada(_StatefulRule(), [[1], [2]])

    def test_ragged_rows_freeze_padding_slots(self):
        """Groups of different sizes coexist: each graph's run reports
        exactly its own trial count."""
        from repro.engine.fleet import ArmadaSimulator

        graphs = self._graphs(count=3)
        seed_rows = [
            derive_seed_block(11, g, 1, count=count)
            for g, count in enumerate((5, 1, 3))
        ]
        runs = ArmadaSimulator(graphs).run_armada(
            FeedbackRule(), seed_rows, validate=True
        )
        assert [run.trials for run in runs] == [5, 1, 3]
        for run in runs:
            assert run.rounds.shape == (run.trials,)
            assert (run.rounds >= 1).all()
            assert run.membership.shape == (run.trials, 15)

    def test_single_graph_armada_equals_fleet(self):
        """The degenerate one-graph armada is just a counter-mode fleet."""
        from repro.engine.fleet import ArmadaSimulator

        graph = self._graphs(count=1)[0]
        seeds = derive_seed_block(13, 0, 1, count=6)
        armada_run = ArmadaSimulator([graph]).run_armada(
            FeedbackRule(), [seeds]
        )[0]
        fleet_run = FleetSimulator(graph).run_fleet(
            FeedbackRule(), seeds, rng_mode="counter"
        )
        assert np.array_equal(armada_run.rounds, fleet_run.rounds)
        assert np.array_equal(armada_run.membership, fleet_run.membership)
        assert np.array_equal(
            armada_run.beeps_by_node, fleet_run.beeps_by_node
        )
