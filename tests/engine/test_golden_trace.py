"""Golden-trace regression: an exact, checked-in round-by-round run.

The conformance suite proves the engines agree with *each other*; this
test pins them to an absolute reference.  The beep trace below was
recorded from the fleet engine at the commit that introduced it, on a
fixed 8-vertex G(n, 0.4) graph under master seed ``0x60``.  Any change to
seed derivation, random-stream consumption, round ordering or probability
updates — in any engine, since they are bit-equal — shifts this trace and
fails here, turning silent semantic drift into a loud diff.

If a future change *intends* to alter the trace (e.g. a new seed
contract), regenerate the literals with ``record_beeps=True`` and say so
in the commit message.
"""

from __future__ import annotations

from random import Random

import numpy as np

from repro.beeping.rng import derive_seed_block
from repro.engine.fleet import FleetSimulator
from repro.engine.rules import FeedbackRule
from repro.graphs.random_graphs import gnp_random_graph

MASTER_SEED = 0x60
GRAPH_SEED = 1984

GOLDEN_EDGES = [
    (0, 1), (0, 3), (1, 2), (1, 3), (2, 4), (2, 5),
    (2, 6), (2, 7), (3, 5), (3, 6), (4, 5), (4, 7),
]
GOLDEN_ROUNDS = [1, 3]
GOLDEN_MIS = [[1, 5, 6, 7], [0, 5, 6, 7]]
GOLDEN_BEEPS = [
    [0, 1, 0, 0, 0, 1, 1, 1],
    [1, 0, 1, 0, 1, 1, 2, 1],
]
# One string per round, one 0/1 char per vertex.
GOLDEN_TRACE = {
    0: ["01000111"],
    1: ["10101010", "00000000", "00000111"],
}


def _golden_run():
    graph = gnp_random_graph(8, 0.4, Random(GRAPH_SEED))
    assert sorted(graph.edges()) == GOLDEN_EDGES, (
        "the golden graph itself changed — gnp_random_graph drift?"
    )
    seeds = derive_seed_block(MASTER_SEED, 0, count=2)
    return graph, FleetSimulator(graph).run_fleet(
        FeedbackRule(), seeds, validate=True, record_beeps=True
    )


def test_golden_summary_statistics():
    _graph, run = _golden_run()
    assert run.rounds.tolist() == GOLDEN_ROUNDS
    assert [sorted(run.mis_set(t)) for t in range(2)] == GOLDEN_MIS
    assert run.beeps_by_node.tolist() == GOLDEN_BEEPS


def test_golden_round_by_round_trace():
    _graph, run = _golden_run()
    history = run.beep_history
    for trial, expected_rows in GOLDEN_TRACE.items():
        observed = [
            "".join("1" if beeped else "0" for beeped in history[r, trial])
            for r in range(int(run.rounds[trial]))
        ]
        assert observed == expected_rows, f"trial {trial} trace drifted"


def test_golden_trace_holds_for_bitboard_backend():
    """Replaying the pre-bitboard golden literals on the bitboard backend:
    packing the state into uint64 lanes must not shift a single byte of
    the recorded stream-mode trace."""
    graph = gnp_random_graph(8, 0.4, Random(GRAPH_SEED))
    seeds = derive_seed_block(MASTER_SEED, 0, count=2)
    run = FleetSimulator(graph, backend="bitboard").run_fleet(
        FeedbackRule(), seeds, validate=True, record_beeps=True
    )
    assert run.rounds.tolist() == GOLDEN_ROUNDS
    assert [sorted(run.mis_set(t)) for t in range(2)] == GOLDEN_MIS
    assert run.beeps_by_node.tolist() == GOLDEN_BEEPS
    history = run.beep_history
    for trial, expected_rows in GOLDEN_TRACE.items():
        observed = [
            "".join("1" if beeped else "0" for beeped in history[r, trial])
            for r in range(int(run.rounds[trial]))
        ]
        assert observed == expected_rows, f"trial {trial} trace drifted"


def test_golden_trace_holds_for_per_trial_engines():
    """The same seeds through the per-trial batch loop give the same runs."""
    from repro.beeping.rng import derive_seed
    from repro.engine.simulator import VectorizedSimulator
    from repro.engine.sparse import SparseSimulator

    graph, fleet = _golden_run()
    for engine in (VectorizedSimulator(graph), SparseSimulator(graph)):
        for t in range(2):
            run = engine.run(FeedbackRule(), derive_seed(MASTER_SEED, 0, t))
            assert run.rounds == GOLDEN_ROUNDS[t]
            assert sorted(run.mis) == GOLDEN_MIS[t]
            assert np.array_equal(run.beeps_by_node, GOLDEN_BEEPS[t])


# ---------------------------------------------------------------------------
# Golden churn trace: the same graph and master seed, now under a fixed
# churn timeline.  The universe grows to 9 vertices (joiner 8 attaches to
# 2 and 6), so every trace row below has 9 columns.  Repair times pin the
# applied-batch discipline of record_quiescence: trial 0's wake at round
# 4 re-opens the competition for 9 more rounds (repair 9), and must never
# be resolved early by the quiet checkpoint that precedes its batch.

CHURN_EVENTS = [
    ("leave", 1, 0),
    ("sleep", 2, 5),
    ("wake", 4, 5),
    ("join", 3, 8, (2, 6)),
]
CHURN_ROUNDS = [13, 5]
CHURN_MIS = [[1, 5, 6, 7], [2, 3]]
CHURN_BEEPS = [
    [0, 1, 0, 0, 0, 2, 1, 1, 0],
    [1, 0, 2, 1, 1, 0, 1, 0, 0],
]
CHURN_ABSENT = [[0], [0]]
CHURN_REPAIR = [(0, 0, 0, 9), (1, 0, 0, 0)]
CHURN_TRACE = {
    0: ["010001110"] + ["000000000"] * 11 + ["000001000"],
    1: ["101010100", "001100000"] + ["000000000"] * 3,
}


def _golden_churn_run(backend="dense"):
    from repro.beeping.faults import ChurnSchedule, FaultModel

    graph = gnp_random_graph(8, 0.4, Random(GRAPH_SEED))
    assert sorted(graph.edges()) == GOLDEN_EDGES
    faults = FaultModel(churn_schedule=ChurnSchedule.from_events(CHURN_EVENTS))
    seeds = derive_seed_block(MASTER_SEED, 0, count=2)
    return FleetSimulator(graph, backend=backend).run_fleet(
        FeedbackRule(), seeds, validate=True, faults=faults,
        rng_mode="stream", record_beeps=True,
    )


def test_golden_churn_trace():
    """The checked-in churn run: exact rounds, MIS, beeps, repair times
    and round-by-round trace on every fleet backend."""
    for backend in ("dense", "sparse", "bitboard"):
        run = _golden_churn_run(backend)
        assert run.rounds.tolist() == CHURN_ROUNDS, backend
        assert [sorted(run.mis_set(t)) for t in range(2)] == CHURN_MIS
        assert run.beeps_by_node.tolist() == CHURN_BEEPS
        history = run.beep_history
        for trial, expected_rows in CHURN_TRACE.items():
            observed = [
                "".join("1" if beeped else "0" for beeped in history[r, trial])
                for r in range(int(run.rounds[trial]))
            ]
            assert observed == expected_rows, (
                f"{backend} trial {trial} churn trace drifted"
            )
        for t in range(2):
            trial = run.trial_run(t)
            assert sorted(trial.absent) == CHURN_ABSENT[t]
            assert trial.repair_rounds == CHURN_REPAIR[t]
            assert trial.recovered


def test_golden_churn_trace_holds_for_per_trial_engines():
    from repro.beeping.faults import ChurnSchedule, FaultModel
    from repro.beeping.rng import derive_seed
    from repro.engine.simulator import VectorizedSimulator
    from repro.engine.sparse import SparseSimulator

    graph = gnp_random_graph(8, 0.4, Random(GRAPH_SEED))
    faults = FaultModel(churn_schedule=ChurnSchedule.from_events(CHURN_EVENTS))
    for engine in (VectorizedSimulator(graph), SparseSimulator(graph)):
        for t in range(2):
            run = engine.run(
                FeedbackRule(), derive_seed(MASTER_SEED, 0, t),
                validate=True, faults=faults, rng_mode="stream",
            )
            assert run.rounds == CHURN_ROUNDS[t]
            assert sorted(run.mis) == CHURN_MIS[t]
            assert np.array_equal(run.beeps_by_node, CHURN_BEEPS[t])
            assert sorted(run.absent) == CHURN_ABSENT[t]
            assert run.repair_rounds == CHURN_REPAIR[t]
            assert run.recovered
