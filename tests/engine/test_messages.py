"""Conformance suite for the message-passing lockstep engines.

Mirrors the beeping conformance contract (``test_conformance.py``) for
:mod:`repro.engine.messages`:

- **bit-equality** across everything that must not change results:
  dense vs sparse backends, the lockstep trial batch vs the seed-by-seed
  loop, and the per-graph fleet vs the block-diagonal armada (including
  ragged trial groups);
- **law agreement** with the per-node reference implementations in
  :mod:`repro.algorithms` — same MIS-validity invariants, matching
  round-count (and accounting) distributions under independent
  randomness;
- **validity always** — a hypothesis property that every fleet-Luby run
  outputs a maximal independent set whatever the graph, backend or seed
  window.
"""

from __future__ import annotations

from random import Random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.local_minimum import LocalMinimumIDMIS
from repro.algorithms.luby import LubyMIS
from repro.algorithms.metivier import MetivierMIS, _bits_to_separate
from repro.beeping.faults import FaultModel
from repro.beeping.rng import derive_seed_block
from repro.engine.batch import run_batch, run_batch_loop
from repro.engine.messages import (
    MESSAGE_RULES,
    MessageArmadaSimulator,
    MessageFleetSimulator,
    _bits_to_separate_u64,
)
from repro.graphs.random_graphs import gnp_random_graph, random_geometric_graph
from repro.graphs.structured import empty_graph, grid_graph, star_graph
from repro.graphs.validation import verify_mis

MASTER_SEED = 0x5EED

BACKENDS = ("dense", "sparse")

MESSAGE_GRAPHS = {
    "gnp-dense": lambda: gnp_random_graph(30, 0.5, Random(601)),
    "gnp-sparse": lambda: gnp_random_graph(45, 0.06, Random(602)),
    "grid": lambda: grid_graph(5, 6),
    "geometric": lambda: random_geometric_graph(25, 0.3, Random(603)),
    "star": lambda: star_graph(9),
    "isolated": lambda: empty_graph(7),
}


@pytest.fixture(params=list(MESSAGE_RULES), ids=list(MESSAGE_RULES))
def rule_name(request) -> str:
    return request.param


@pytest.fixture(params=list(MESSAGE_GRAPHS), ids=list(MESSAGE_GRAPHS))
def message_graph(request):
    return MESSAGE_GRAPHS[request.param]()


def assert_runs_equal(a, b) -> None:
    assert np.array_equal(a.rounds, b.rounds)
    assert np.array_equal(a.membership, b.membership)
    assert np.array_equal(a.messages, b.messages)
    assert np.array_equal(a.bits, b.bits)


class TestBitEquality:
    """Backend, batching and armada stacking never change results."""

    TRIALS = 9

    def test_dense_equals_sparse(self, message_graph, rule_name):
        seeds = derive_seed_block(MASTER_SEED, 0, count=self.TRIALS)
        runs = {
            backend: MessageFleetSimulator(
                message_graph, backend=backend
            ).run_fleet(MESSAGE_RULES[rule_name](), seeds, validate=True)
            for backend in BACKENDS
        }
        assert_runs_equal(runs["dense"], runs["sparse"])

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batch_equals_per_trial_loop(
        self, message_graph, rule_name, backend
    ):
        seeds = derive_seed_block(MASTER_SEED, 1, count=self.TRIALS)
        simulator = MessageFleetSimulator(message_graph, backend=backend)
        rule = MESSAGE_RULES[rule_name]()
        batch = simulator.run_fleet(rule, seeds, validate=True)
        for trial in range(self.TRIALS):
            lone = simulator.run_fleet(rule, seeds[trial : trial + 1])
            assert lone.rounds[0] == batch.rounds[trial]
            assert np.array_equal(
                lone.membership[0], batch.membership[trial]
            )
            assert lone.messages[0] == batch.messages[trial]
            assert lone.bits[0] == batch.bits[trial]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_armada_matches_per_graph_fleet(self, rule_name, backend):
        graphs = [
            gnp_random_graph(22, 0.3, Random(700 + g)) for g in range(3)
        ]
        # Ragged groups, like a trial_range-windowed cell.
        seed_rows = [
            derive_seed_block(MASTER_SEED, g, 1, count=5 - g, start=g)
            for g in range(3)
        ]
        armada = MessageArmadaSimulator(graphs, backend=backend)
        assert armada.backend == backend
        runs = armada.run_armada(
            MESSAGE_RULES[rule_name](), seed_rows, validate=True
        )
        for graph, row, run in zip(graphs, seed_rows, runs):
            lone = MessageFleetSimulator(graph, backend=backend).run_fleet(
                MESSAGE_RULES[rule_name](), row, validate=True
            )
            assert_runs_equal(run, lone)

    def test_armada_mixed_topologies_backends_agree(self):
        graphs = [grid_graph(4, 5), gnp_random_graph(20, 0.4, Random(31)),
                  empty_graph(20)]
        seed_rows = [
            derive_seed_block(77, g, 1, count=3) for g in range(3)
        ]
        rule = MESSAGE_RULES["metivier"]
        dense = MessageArmadaSimulator(graphs, backend="dense").run_armada(
            rule(), seed_rows, validate=True
        )
        sparse = MessageArmadaSimulator(graphs, backend="sparse").run_armada(
            rule(), seed_rows, validate=True
        )
        for d, s in zip(dense, sparse):
            assert_runs_equal(d, s)

    def test_disagreement_is_detectable(self):
        """Different seeds give different traces — equality is not vacuous."""
        graph = gnp_random_graph(25, 0.3, Random(9))
        simulator = MessageFleetSimulator(graph)
        rule = MESSAGE_RULES["luby-permutation"]()
        a = simulator.run_fleet(rule, derive_seed_block(1, 0, count=5))
        b = simulator.run_fleet(rule, derive_seed_block(2, 0, count=5))
        assert not (
            np.array_equal(a.rounds, b.rounds)
            and np.array_equal(a.membership, b.membership)
        )


class TestBatchDispatch:
    """run_batch routes message rules to the message fabric."""

    TRIALS = 8

    def test_auto_fleet_and_loop_agree(self, rule_name):
        graph = gnp_random_graph(24, 0.3, Random(41))
        results = {
            engine: run_batch(
                graph,
                MESSAGE_RULES[rule_name],
                self.TRIALS,
                MASTER_SEED,
                engine=engine,
                rng_mode="counter",
            )
            for engine in ("auto", "fleet", "loop")
        }
        baseline = results["auto"]
        assert baseline.rule_name == rule_name
        for result in results.values():
            assert np.array_equal(result.rounds, baseline.rounds)
            # Message algorithms do not beep.
            assert np.all(result.mean_beeps == 0.0)

    def test_stream_mode_is_rejected(self):
        graph = gnp_random_graph(10, 0.4, Random(3))
        with pytest.raises(ValueError, match="counter"):
            run_batch(
                graph, MESSAGE_RULES["luby-permutation"], 2, 1,
                rng_mode="stream",
            )
        with pytest.raises(ValueError, match="counter"):
            run_batch_loop(
                graph, MESSAGE_RULES["metivier"], 2, 1, rng_mode="stream"
            )

    def test_faults_are_rejected(self):
        graph = gnp_random_graph(10, 0.4, Random(3))
        with pytest.raises(ValueError, match="fault"):
            run_batch(
                graph,
                MESSAGE_RULES["luby-probability"],
                2,
                1,
                rng_mode="counter",
                faults=FaultModel(beep_loss_probability=0.5),
            )


class TestReferenceAgreement:
    """The per-node references agree in law, not bit for bit."""

    TRIALS = 60

    REFERENCES = {
        "luby-permutation": lambda: LubyMIS("permutation"),
        "luby-probability": lambda: LubyMIS("probability"),
        "metivier": MetivierMIS,
        "local-minimum-id": LocalMinimumIDMIS,
    }

    def test_round_and_accounting_distributions_match(self, rule_name):
        graph = gnp_random_graph(30, 0.25, Random(88))
        ref_rounds, ref_messages, ref_bits = [], [], []
        for t in range(self.TRIALS):
            run = self.REFERENCES[rule_name]().run(graph, Random(70_000 + t))
            run.verify()
            ref_rounds.append(run.rounds)
            ref_messages.append(run.messages)
            ref_bits.append(run.bits)
        seeds = derive_seed_block(MASTER_SEED, 5, count=self.TRIALS)
        fleet = MessageFleetSimulator(graph).run_fleet(
            MESSAGE_RULES[rule_name](), seeds, validate=True
        )
        # ~4 standard errors at 60 trials of these few-round distributions.
        assert fleet.rounds.mean() == pytest.approx(
            np.mean(ref_rounds), rel=0.35
        )
        assert fleet.messages.mean() == pytest.approx(
            np.mean(ref_messages), rel=0.35
        )
        assert fleet.bits.mean() == pytest.approx(
            np.mean(ref_bits), rel=0.35
        )


class TestPrefixBits:
    """The vectorised Métivier bit accounting is the reference formula."""

    def test_matches_reference_bit_lengths(self):
        rng = Random(5)
        values = [0, 1, 2, 3, 2**52, 2**53 - 1, 2**53, 2**60 - 1, 2**63,
                  2**64 - 1]
        values += [rng.getrandbits(64) for _ in range(5000)]
        array = np.array(values, dtype=np.uint64)
        got = _bits_to_separate_u64(array)
        expected = np.array(
            [_bits_to_separate(int(v), 0) for v in array], dtype=np.int64
        )
        assert np.array_equal(got, expected)


@settings(max_examples=40, deadline=None, derandomize=True)
@given(
    n=st.integers(min_value=1, max_value=40),
    edge_probability=st.floats(min_value=0.0, max_value=1.0),
    graph_seed=st.integers(min_value=0, max_value=2**31),
    master_seed=st.integers(min_value=0, max_value=2**31),
    start=st.integers(min_value=0, max_value=100),
    trials=st.integers(min_value=1, max_value=6),
    backend=st.sampled_from(BACKENDS),
    rule_name=st.sampled_from(sorted(MESSAGE_RULES)),
)
def test_fleet_message_runs_always_output_valid_mis(
    n, edge_probability, graph_seed, master_seed, start, trials, backend,
    rule_name,
):
    """Whatever the graph, backend or seed window, every trial's output
    is a maximal independent set."""
    graph = gnp_random_graph(n, edge_probability, Random(graph_seed))
    seeds = derive_seed_block(master_seed, 0, count=trials, start=start)
    run = MessageFleetSimulator(graph, backend=backend).run_fleet(
        MESSAGE_RULES[rule_name](), seeds
    )
    for trial in range(trials):
        verify_mis(graph, run.mis_set(trial))
