"""Property-based MIS validity: every engine, every graph family.

Seeded exhaustively by ``derive_seed`` (no hypothesis dependency — the
whole sweep is one deterministic matrix), these tests assert the single
non-negotiable engine property: *whatever* the topology, every trial's
output passes :func:`verify_mis`.  Families cover the regimes the engines
specialise in — dense and sparse G(n, p) (including p = 0 and p = 1
extremes), grids, and random geometric graphs — times all four fast
engines times two rules.
"""

from __future__ import annotations

from random import Random

import pytest

from repro.beeping.rng import derive_seed, derive_seed_block
from repro.engine.fleet import FleetSimulator
from repro.engine.rules import FeedbackRule, SweepRule
from repro.graphs.random_graphs import gnp_random_graph, random_geometric_graph
from repro.graphs.structured import grid_graph
from repro.graphs.validation import verify_mis

from tests.engine.conftest import engine_run

MASTER_SEED = 0x9115

GRAPH_FAMILIES = {
    "gnp": lambda draw: gnp_random_graph(
        1 + draw % 30, (draw % 11) / 10.0, Random(derive_seed(MASTER_SEED, 1, draw))
    ),
    "grid": lambda draw: grid_graph(1 + draw % 6, 1 + (draw // 6) % 6),
    "geometric": lambda draw: random_geometric_graph(
        1 + draw % 25,
        0.05 + (draw % 7) / 8.0,
        Random(derive_seed(MASTER_SEED, 2, draw)),
    ),
}

DRAWS_PER_FAMILY = 12


@pytest.mark.parametrize("family", list(GRAPH_FAMILIES))
@pytest.mark.parametrize("rule_factory", (FeedbackRule, SweepRule))
def test_engine_output_is_always_a_valid_mis(engine_id, family, rule_factory):
    make_graph = GRAPH_FAMILIES[family]
    for draw in range(DRAWS_PER_FAMILY):
        graph = make_graph(draw)
        run = engine_run(
            engine_id,
            graph,
            rule_factory,
            derive_seed(MASTER_SEED, 3, draw),
            max_rounds=50_000,
        )
        verify_mis(graph, run.mis)


@pytest.mark.parametrize("family", list(GRAPH_FAMILIES))
def test_fleet_batch_every_trial_is_a_valid_mis(family):
    """One lockstep batch per graph: all trials must verify, not just one."""
    make_graph = GRAPH_FAMILIES[family]
    for draw in range(0, DRAWS_PER_FAMILY, 3):
        graph = make_graph(draw)
        simulator = FleetSimulator(graph)
        seeds = derive_seed_block(MASTER_SEED, 4, draw, count=6)
        run = simulator.run_fleet(FeedbackRule(), seeds)
        for trial in range(run.trials):
            verify_mis(graph, run.mis_set(trial))
