"""Property-based tests for the vectorised engine."""

from random import Random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policy import FeedbackNode
from repro.engine.rules import FeedbackRule, SweepRule
from repro.engine.simulator import VectorizedSimulator
from repro.graphs.random_graphs import gnp_random_graph


@given(
    observations=st.lists(st.booleans(), min_size=1, max_size=40),
    down=st.floats(min_value=0.1, max_value=0.9),
    up=st.floats(min_value=1.1, max_value=4.0),
)
def test_vector_rule_matches_scalar_policy(observations, down, up):
    """One vectorised vertex must follow the scalar FeedbackNode exactly."""
    rule = FeedbackRule(decrease_factor=down, increase_factor=up)
    node = FeedbackNode(decrease_factor=down, increase_factor=up)
    p = rule.initial(1)
    for t, heard in enumerate(observations):
        p = rule.update(
            p, np.array([heard]), np.array([True]), t
        )
        node.observe_first_exchange(False, heard)
        assert p[0] == node.beep_probability()


@given(
    observations=st.lists(st.booleans(), min_size=1, max_size=60),
)
def test_feedback_rule_probability_bounds(observations):
    """Probabilities stay in (0, 1/2] forever."""
    rule = FeedbackRule()
    p = rule.initial(3)
    for t, heard in enumerate(observations):
        heard_vector = np.array([heard, not heard, heard])
        p = rule.update(p, heard_vector, np.ones(3, bool), t)
        assert (p > 0.0).all()
        assert (p <= 0.5).all()


@given(
    n=st.integers(min_value=1, max_value=25),
    p=st.floats(min_value=0.0, max_value=1.0),
    graph_seed=st.integers(min_value=0, max_value=2**32 - 1),
    run_seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=40, deadline=None)
def test_vectorized_always_mis(n, p, graph_seed, run_seed):
    graph = gnp_random_graph(n, p, Random(graph_seed))
    simulator = VectorizedSimulator(graph, max_rounds=50_000)
    simulator.run(FeedbackRule(), run_seed, validate=True)


@given(
    n=st.integers(min_value=1, max_value=20),
    graph_seed=st.integers(min_value=0, max_value=2**32 - 1),
    run_seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=25, deadline=None)
def test_vectorized_sweep_always_mis(n, graph_seed, run_seed):
    graph = gnp_random_graph(n, 0.4, Random(graph_seed))
    simulator = VectorizedSimulator(graph, max_rounds=50_000)
    simulator.run(SweepRule(), run_seed, validate=True)


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=20, deadline=None)
def test_beep_counts_consistent_with_rounds(seed):
    """No vertex can beep more times than there were rounds."""
    graph = gnp_random_graph(15, 0.4, Random(seed))
    simulator = VectorizedSimulator(graph)
    run = simulator.run(FeedbackRule(), seed)
    assert (run.beeps_by_node <= run.rounds).all()
