"""Unit tests for the vectorised probability rules."""

import numpy as np
import pytest

from repro.algorithms.afek_global import global_schedule
from repro.algorithms.afek_sweep import sweep_probability
from repro.engine.rules import FeedbackRule, GlobalScheduleRule, SweepRule


class TestFeedbackRule:
    def test_initial_vector(self):
        rule = FeedbackRule()
        p = rule.initial(4)
        assert p.shape == (4,)
        assert (p == 0.5).all()

    def test_update_matches_scalar_policy(self):
        from repro.core.policy import FeedbackNode

        rule = FeedbackRule()
        p = rule.initial(2)
        heard = np.array([True, False])
        active = np.array([True, True])
        updated = rule.update(p, heard, active, 0)

        node_heard = FeedbackNode()
        node_heard.observe_first_exchange(False, True)
        node_silent = FeedbackNode()
        node_silent.observe_first_exchange(False, False)
        assert updated[0] == node_heard.beep_probability()
        assert updated[1] == node_silent.beep_probability()

    def test_cap(self):
        rule = FeedbackRule()
        p = np.array([0.5, 0.4])
        updated = rule.update(
            p, np.array([False, False]), np.array([True, True]), 0
        )
        assert updated[0] == 0.5
        assert updated[1] == 0.5

    def test_custom_parameters(self):
        rule = FeedbackRule(
            initial_probability=0.25, decrease_factor=0.4, increase_factor=1.5
        )
        p = rule.initial(1)
        assert p[0] == 0.25
        down = rule.update(p, np.array([True]), np.array([True]), 0)
        assert down[0] == pytest.approx(0.1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"decrease_factor": 1.0},
            {"increase_factor": 1.0},
            {"initial_probability": 0.0},
            {"max_probability": 1.5},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            FeedbackRule(**kwargs)

    def test_name(self):
        assert FeedbackRule().name == "feedback"


class TestSweepRule:
    def test_matches_schedule(self):
        rule = SweepRule()
        p = rule.initial(3)
        assert (p == sweep_probability(0)).all()
        for t in range(10):
            p = rule.update(p, np.zeros(3, bool), np.ones(3, bool), t)
            assert (p == sweep_probability(t + 1)).all()

    def test_name(self):
        assert SweepRule().name == "afek-sweep"


class TestGlobalScheduleRule:
    def test_matches_schedule(self):
        rule = GlobalScheduleRule(num_vertices=64, max_degree=16)
        p = rule.initial(5)
        assert (p == global_schedule(0, 64, 16)).all()
        for t in range(30):
            p = rule.update(p, np.zeros(5, bool), np.ones(5, bool), t)
            assert (p == global_schedule(t + 1, 64, 16)).all()

    def test_name(self):
        assert GlobalScheduleRule(10, 3).name == "afek-global"
