"""Unit tests for the vectorised simulator."""

from random import Random

import numpy as np
import pytest

from repro.engine.rules import FeedbackRule, SweepRule
from repro.engine.simulator import VectorizedSimulator
from repro.graphs.random_graphs import gnp_random_graph
from repro.graphs.structured import (
    complete_graph,
    empty_graph,
    grid_graph,
    star_graph,
)
from repro.graphs.validation import verify_mis


class TestBasics:
    def test_empty_graph(self):
        simulator = VectorizedSimulator(empty_graph(0))
        run = simulator.run(FeedbackRule(), seed=1)
        assert run.rounds == 0
        assert run.mis == set()

    def test_isolated_vertices_join_first_possible(self):
        simulator = VectorizedSimulator(empty_graph(6))
        run = simulator.run(FeedbackRule(), seed=2, validate=True)
        assert run.mis == set(range(6))

    def test_complete_graph_single_winner(self):
        simulator = VectorizedSimulator(complete_graph(12))
        run = simulator.run(FeedbackRule(), seed=3, validate=True)
        assert len(run.mis) == 1

    def test_validate_flag(self, random50):
        simulator = VectorizedSimulator(random50)
        run = simulator.run(FeedbackRule(), seed=4, validate=True)
        verify_mis(random50, run.mis)

    def test_deterministic_given_seed(self, random50):
        simulator = VectorizedSimulator(random50)
        a = simulator.run(FeedbackRule(), seed=5)
        b = simulator.run(FeedbackRule(), seed=5)
        assert a.mis == b.mis
        assert a.rounds == b.rounds
        assert (a.beeps_by_node == b.beeps_by_node).all()

    def test_different_seeds_differ(self, random50):
        simulator = VectorizedSimulator(random50)
        a = simulator.run(FeedbackRule(), seed=6)
        b = simulator.run(FeedbackRule(), seed=7)
        assert a.mis != b.mis or a.rounds != b.rounds

    def test_max_rounds_guard(self):
        simulator = VectorizedSimulator(complete_graph(3), max_rounds=1)
        # A K_3 usually needs more than one round.
        with pytest.raises(RuntimeError):
            for seed in range(20):
                simulator.run(SweepRule(), seed=seed)

    def test_max_rounds_validation(self):
        with pytest.raises(ValueError):
            VectorizedSimulator(empty_graph(1), max_rounds=0)

    def test_simulator_reusable(self, random50):
        simulator = VectorizedSimulator(random50)
        for seed in range(5):
            run = simulator.run(FeedbackRule(), seed=seed, validate=True)
            assert run.rounds >= 1


class TestMetrics:
    def test_beep_counts_plausible(self, random50):
        simulator = VectorizedSimulator(random50)
        run = simulator.run(FeedbackRule(), seed=8)
        assert run.beeps_by_node.shape == (50,)
        assert (run.beeps_by_node >= 0).all()
        assert run.mean_beeps_per_node == pytest.approx(
            float(run.beeps_by_node.sum()) / 50
        )

    def test_mean_beeps_empty(self):
        simulator = VectorizedSimulator(empty_graph(0))
        run = simulator.run(FeedbackRule(), seed=1)
        assert run.mean_beeps_per_node == 0.0

    def test_rule_name_recorded(self, random50):
        simulator = VectorizedSimulator(random50)
        assert simulator.run(FeedbackRule(), 1).rule_name == "feedback"
        assert simulator.run(SweepRule(), 1).rule_name == "afek-sweep"


class TestLargeGraphOverflowRegression:
    def test_many_beeping_neighbors(self):
        """More than 255 beeping neighbours must still register as heard
        (uint8 matmul would overflow and could wrap to 0)."""
        graph = star_graph(300)
        simulator = VectorizedSimulator(graph)
        run = simulator.run(SweepRule(), seed=11, validate=True)
        # Round 0 of the sweep has p=1: all 301 vertices beep, everyone
        # hears, nobody joins.  If overflow dropped the observation the hub
        # would wrongly join alongside a leaf and validation would fail.
        assert run.rounds >= 2


@pytest.mark.parametrize("rule_factory", [FeedbackRule, SweepRule])
@pytest.mark.parametrize("seed", range(4))
def test_output_always_mis(rule_factory, seed):
    graph = gnp_random_graph(40, 0.3, Random(seed))
    simulator = VectorizedSimulator(graph)
    simulator.run(rule_factory(), seed=seed + 50, validate=True)


def test_grid_graph_feedback():
    simulator = VectorizedSimulator(grid_graph(9, 9))
    run = simulator.run(FeedbackRule(), seed=13, validate=True)
    assert run.rounds >= 1
