"""Tests for the sparse (CSR) engine, including exact equivalence with the
dense engine — both consume the same numpy random stream in the same order,
so identical seeds must give identical runs."""

from random import Random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.rules import FeedbackRule, SweepRule
from repro.engine.simulator import VectorizedSimulator
from repro.engine.sparse import SparseSimulator
from repro.graphs.graph import Graph
from repro.graphs.random_graphs import gnp_random_graph, random_geometric_graph
from repro.graphs.structured import empty_graph, grid_graph, star_graph


class TestBasics:
    def test_empty_graph(self):
        run = SparseSimulator(empty_graph(0)).run(FeedbackRule(), 1)
        assert run.rounds == 0
        assert run.mis == set()

    def test_isolated_vertices(self):
        run = SparseSimulator(empty_graph(5)).run(
            FeedbackRule(), 2, validate=True
        )
        assert run.mis == set(range(5))

    def test_mixed_isolated_and_connected(self):
        graph = Graph(5, [(1, 2), (2, 3)])
        run = SparseSimulator(graph).run(FeedbackRule(), 3, validate=True)
        assert 0 in run.mis
        assert 4 in run.mis

    def test_trailing_isolated_vertices(self):
        # Regression guard for the reduceat boundaries: isolated vertices
        # at the END of the index range have empty trailing CSR segments.
        graph = Graph(6, [(0, 1)])
        run = SparseSimulator(graph).run(FeedbackRule(), 4, validate=True)
        assert {2, 3, 4, 5} <= run.mis

    def test_trailing_isolated_vertices_do_not_truncate_hearing(self):
        # A clamped trailing start used to cut the last non-empty CSR
        # segment short, dropping beeps from a vertex's highest-index
        # neighbours (sparse run then disagreed with dense on rounds).
        from repro.engine.sparse import SparseSimulator as SS

        # Vertex 2's CSR segment [2, 4) is the last one; vertex 3 is a
        # trailing isolated vertex whose start the old clamp pulled back
        # to 3, cutting neighbour 1 out of vertex 2's segment.
        graph = Graph(4, [(2, 0), (2, 1)])
        simulator = SS(graph)
        only_1 = np.array([False, True, False, False])
        heard = simulator._neighbor_or(only_1)
        assert list(heard) == [False, False, True, False]

    def test_star(self):
        run = SparseSimulator(star_graph(20)).run(
            FeedbackRule(), 5, validate=True
        )
        assert run.rounds >= 1

    def test_max_rounds_validation(self):
        with pytest.raises(ValueError):
            SparseSimulator(empty_graph(1), max_rounds=0)


class TestExactEquivalenceWithDense:
    @pytest.mark.parametrize("seed", range(5))
    def test_identical_runs_random_graph(self, seed):
        graph = gnp_random_graph(40, 0.2, Random(seed))
        dense = VectorizedSimulator(graph).run(FeedbackRule(), 100 + seed)
        sparse = SparseSimulator(graph).run(FeedbackRule(), 100 + seed)
        assert dense.mis == sparse.mis
        assert dense.rounds == sparse.rounds
        assert np.array_equal(dense.beeps_by_node, sparse.beeps_by_node)

    def test_identical_runs_sweep(self):
        graph = gnp_random_graph(30, 0.3, Random(9))
        dense = VectorizedSimulator(graph).run(SweepRule(), 7)
        sparse = SparseSimulator(graph).run(SweepRule(), 7)
        assert dense.mis == sparse.mis
        assert dense.rounds == sparse.rounds

    def test_identical_runs_grid(self):
        graph = grid_graph(8, 8)
        dense = VectorizedSimulator(graph).run(FeedbackRule(), 11)
        sparse = SparseSimulator(graph).run(FeedbackRule(), 11)
        assert dense.mis == sparse.mis


class TestScale:
    def test_large_sparse_network(self):
        """The engine's reason to exist: n = 5000 sensor network."""
        graph = random_geometric_graph(5000, 0.025, Random(13))
        run = SparseSimulator(graph).run(FeedbackRule(), 14, validate=True)
        assert run.rounds < 60
        assert run.mean_beeps_per_node < 3.0


@given(
    n=st.integers(min_value=1, max_value=30),
    p=st.floats(min_value=0.0, max_value=0.5),
    graph_seed=st.integers(min_value=0, max_value=2**32 - 1),
    run_seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=30, deadline=None)
def test_property_sparse_matches_dense(n, p, graph_seed, run_seed):
    graph = gnp_random_graph(n, p, Random(graph_seed))
    dense = VectorizedSimulator(graph, max_rounds=50_000).run(
        FeedbackRule(), run_seed
    )
    sparse = SparseSimulator(graph, max_rounds=50_000).run(
        FeedbackRule(), run_seed
    )
    assert dense.mis == sparse.mis
    assert dense.rounds == sparse.rounds
