"""Tests for the robustness ablation drivers (scaled down)."""

import pytest

from repro.experiments.ablations import (
    factor_ablation,
    fault_ablation,
    initial_probability_ablation,
)


class TestFactorAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return factor_ablation(
            factor_pairs=((0.5, 2.0), (0.3, 3.0)),
            n=60,
            trials=8,
            master_seed=81,
        )

    def test_one_point_per_pair(self, result):
        assert len(result.points) == 2

    def test_factors_in_extra(self, result):
        assert result.points[0].extra == {"down": 0.5, "up": 2.0}

    def test_robustness_claim(self, result):
        """Perturbed factors stay within a small multiple of the baseline."""
        baseline = result.points[0].mean
        for point in result.points[1:]:
            assert point.mean < 4.0 * baseline


class TestInitialProbabilityAblation:
    def test_varied_initial_probability_stays_in_band(self):
        """Section 6: initial probabilities other than 1/2 do not
        significantly hurt performance.  (Empirically, on dense G(n, 1/2)
        graphs a *lower* start is often slightly faster, because p=1/2
        causes beep collisions in the first rounds; the feedback recovers
        either way.)"""
        result = initial_probability_ablation(
            initial_probabilities=(0.5, 0.01),
            n=60,
            trials=8,
            master_seed=82,
        )
        default = result.points[0].mean
        tiny = result.points[1].mean
        assert default / 3.0 < tiny < default * 3.0
        assert result.points[1].x == pytest.approx(0.01)


class TestFaultAblation:
    def test_grid_of_combinations(self):
        result = fault_ablation(
            loss_probabilities=(0.0, 0.1),
            spurious_probabilities=(0.0, 0.1),
            n=40,
            trials=4,
            master_seed=83,
        )
        assert len(result.points) == 4
        combos = {(p.extra["loss"], p.extra["spurious"]) for p in result.points}
        assert combos == {(0.0, 0.0), (0.0, 0.1), (0.1, 0.0), (0.1, 0.1)}

    def test_all_runs_terminate_with_valid_mis(self):
        # run_trials validates internally; reaching here is the assertion.
        result = fault_ablation(
            loss_probabilities=(0.2,),
            spurious_probabilities=(0.2,),
            n=30,
            trials=4,
            master_seed=84,
        )
        assert result.points[0].mean >= 1.0
