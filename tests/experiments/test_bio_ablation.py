"""Tests for the Notch–Delta inhibition-strength ablation."""

import pytest

from repro.experiments.bio_ablation import inhibition_strength_ablation


class TestInhibitionAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return inhibition_strength_ablation(
            strengths=(5.0, 100.0),
            rows=6,
            cols=6,
            trials=2,
            t_end=80.0,
            master_seed=7,
        )

    def test_one_point_per_strength(self, result):
        assert [p.x for p in result.points] == [5.0, 100.0]

    def test_strong_inhibition_forms_mis_pattern(self, result):
        strong = result.points[-1]
        assert strong.extra["mis_fraction"] == 1.0
        assert strong.mean > 0.5  # clean bimodal separation

    def test_weak_inhibition_fails(self, result):
        weak = result.points[0]
        assert weak.extra["mis_fraction"] == 0.0
        assert weak.mean < 0.1

    def test_threshold_direction(self, result):
        """Pattern quality increases with inhibition strength."""
        separations = [p.mean for p in result.points]
        assert separations == sorted(separations)
