"""The comparison harness: grid wiring, caching, and a golden table.

The golden snapshot pins the full rendered table of a small
deterministic grid — every quantity (rounds, messages, bits) of every
algorithm on both engines.  It is byte-stable because the fleet cells
run the counter fabric and the reference cells ``random.Random``, both
platform-independent; any drift in kernels, accounting or seed
derivation shows up as a table diff.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.compare import (
    DEFAULT_ALGORITHMS,
    comparison_csv,
    comparison_experiment,
)
from repro.sweep.spec import FLEET_RULES

GOLDEN = Path(__file__).parent / "golden_compare_table.txt"


def small_comparison(**overrides):
    defaults = dict(
        algorithms=DEFAULT_ALGORITHMS + ("greedy",),
        sizes=(12, 20),
        edge_probability=0.4,
        trials=6,
        master_seed=5,
    )
    defaults.update(overrides)
    return comparison_experiment(**defaults)


class TestComparisonExperiment:
    def test_grid_shape_and_series(self):
        result = small_comparison()
        names = result.rounds.series_names()
        assert names == list(DEFAULT_ALGORITHMS + ("greedy",))
        for experiment in (result.rounds, result.bits_per_node):
            assert len(experiment.points) == len(names) * 2
            for point in experiment.points:
                assert point.trials == 6

    def test_default_panel_is_all_fleet(self):
        """The paper panel never falls back to the per-node loop."""
        assert set(DEFAULT_ALGORITHMS) <= set(FLEET_RULES)

    def test_message_passing_beats_beeping_on_rounds_not_bits(self):
        """The paper's qualitative story must hold in the summary: Luby
        terminates in fewer rounds but pays more bits per message."""
        result = small_comparison()
        by_series = {
            (p.series, p.x): p for p in result.rounds.points
        }
        for n in (12.0, 20.0):
            assert (
                by_series[("luby-permutation", n)].mean
                < by_series[("feedback", n)].mean
            )
            assert (
                by_series[("luby-permutation", n)].extra["bits_per_message"]
                > by_series[("feedback", n)].extra["bits_per_message"]
            )

    def test_warm_cache_rerun_is_free_and_identical(self, tmp_path):
        first = small_comparison(cache_dir=tmp_path)
        assert first.report.shards_executed > 0
        second = small_comparison(cache_dir=tmp_path)
        assert second.report.shards_executed == 0
        assert second.report.shards_cached == second.report.shards_total
        assert comparison_csv(second) == comparison_csv(first)

    def test_multi_family_labels(self):
        result = small_comparison(
            algorithms=("feedback", "metivier"),
            families=("gnp", "grid"),
            sizes=(4,),
        )
        assert result.rounds.series_names() == [
            "feedback/gnp", "metivier/gnp", "feedback/grid", "metivier/grid",
        ]
        # grid reads sizes as side lengths: x is the vertex count.
        assert {p.x for p in result.rounds.points} == {4.0, 16.0}

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="algorithm"):
            small_comparison(algorithms=())
        with pytest.raises(ValueError, match="size"):
            small_comparison(sizes=())
        with pytest.raises(ValueError, match="family"):
            small_comparison(families=("torus",))
        with pytest.raises(ValueError, match="engine"):
            small_comparison(engine="gpu")

    def test_csv_lists_both_quantities(self):
        text = comparison_csv(small_comparison())
        lines = text.strip().splitlines()
        assert lines[0] == "series,x,quantity,mean,std,trials"
        quantities = {line.split(",")[2] for line in lines[1:]}
        assert quantities == {"rounds", "bits_per_node"}


def test_golden_comparison_table():
    """The rendered table matches the committed snapshot byte for byte.

    Regenerate (after an intentional semantics change) with::

        PYTHONPATH=src python -c "
        from tests.experiments.test_compare import small_comparison, GOLDEN
        GOLDEN.write_text(small_comparison().table() + '\\n')"
    """
    expected = GOLDEN.read_text(encoding="utf-8")
    assert small_comparison().table() + "\n" == expected
