"""Tests for round-count distributions."""

import pytest

from repro.experiments.distributions import (
    RoundDistribution,
    round_distributions,
)


class TestRoundDistribution:
    def test_quantiles(self):
        d = RoundDistribution("x", rounds=[10, 20, 30, 40, 50])
        assert d.quantile(0.0) == 10
        assert d.quantile(1.0) == 50
        assert d.median == 30
        assert d.quantile(0.25) == 20

    def test_interpolation(self):
        d = RoundDistribution("x", rounds=[10, 20])
        assert d.median == 15.0

    def test_singleton(self):
        d = RoundDistribution("x", rounds=[7])
        assert d.median == 7.0
        assert d.p95 == 7.0

    def test_quantile_bounds(self):
        d = RoundDistribution("x", rounds=[1, 2])
        with pytest.raises(ValueError):
            d.quantile(1.5)

    def test_histogram_renders(self):
        d = RoundDistribution("demo", rounds=[1, 2, 2, 3, 3, 3])
        text = d.histogram(bins=3)
        assert "demo histogram" in text


class TestCollection:
    @pytest.fixture(scope="class")
    def distributions(self):
        return round_distributions(
            algorithm_names=("feedback", "afek-sweep"),
            n=40,
            trials=25,
            master_seed=3,
        )

    def test_all_algorithms_collected(self, distributions):
        assert set(distributions) == {"feedback", "afek-sweep"}
        for d in distributions.values():
            assert len(d.rounds) == 25

    def test_feedback_stochastically_faster(self, distributions):
        feedback = distributions["feedback"]
        sweep = distributions["afek-sweep"]
        assert feedback.median < sweep.median
        assert feedback.p95 < sweep.p95

    def test_trials_validation(self):
        with pytest.raises(ValueError):
            round_distributions(trials=0)
