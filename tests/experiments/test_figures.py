"""Tests for the figure drivers (scaled down for test speed)."""

import pytest

from repro.experiments.figures import (
    figure1_example,
    figure3_series,
    figure5_series,
    grid_beeps_series,
)
from repro.graphs.validation import verify_mis


class TestFigure1:
    def test_returns_verified_mis_on_20_nodes(self):
        graph, mis = figure1_example(seed=20)
        assert graph.num_vertices == 20
        verify_mis(graph, mis)

    def test_deterministic(self):
        a = figure1_example(seed=4)
        b = figure1_example(seed=4)
        assert a[0] == b[0]
        assert a[1] == b[1]


class TestFigure3:
    @pytest.fixture(scope="class")
    def result(self):
        return figure3_series(
            sizes=(30, 60, 120),
            trials=10,
            graphs_per_size=2,
            master_seed=33,
            validate=True,
        )

    def test_series_present(self, result):
        names = result.series_names()
        assert "feedback" in names
        assert "afek-sweep" in names
        assert "log2_squared" in names
        assert "2.5_log2" in names

    def test_point_counts(self, result):
        assert len(result.series("feedback")) == 3
        assert len(result.series("afek-sweep")) == 3

    def test_sweep_slower_than_feedback(self, result):
        for n in (30, 60, 120):
            sweep = next(
                p for p in result.series("afek-sweep") if p.x == n
            )
            feedback = next(
                p for p in result.series("feedback") if p.x == n
            )
            assert sweep.mean > feedback.mean

    def test_trials_recorded(self, result):
        for point in result.series("feedback"):
            assert point.trials == 10

    def test_reference_curves_match_theory(self, result):
        import math

        point = next(p for p in result.series("log2_squared") if p.x == 120)
        assert point.mean == pytest.approx(math.log2(120) ** 2)

    def test_parameters_recorded(self, result):
        assert result.parameters["edge_probability"] == 0.5


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self):
        return figure5_series(
            sizes=(20, 60),
            trials=20,
            graphs_per_size=2,
            master_seed=55,
        )

    def test_feedback_beeps_stay_low(self, result):
        for point in result.series("feedback"):
            assert point.mean < 3.0

    def test_sweep_beeps_grow(self, result):
        sweep = result.means("afek-sweep")
        assert sweep[-1] > sweep[0]

    def test_feedback_flat_relative_to_sweep(self, result):
        feedback = result.means("feedback")
        sweep = result.means("afek-sweep")
        feedback_growth = feedback[-1] - feedback[0]
        sweep_growth = sweep[-1] - sweep[0]
        assert sweep_growth > feedback_growth


class TestGridBeeps:
    def test_flat_and_close_to_paper_value(self):
        result = grid_beeps_series(
            side_lengths=(4, 8), trials=30, master_seed=66
        )
        feedback = result.series("feedback")
        assert len(feedback) == 2
        for point in feedback:
            # Paper: around 1.1 beeps per node on rectangular grids.
            assert 0.6 < point.mean < 2.0


class TestSweepExecution:
    """Figures run through the sweep orchestrator: jobs, cache and shard
    width are pure execution knobs and must never change the numbers."""

    ARGS = dict(sizes=(20, 30), trials=6, graphs_per_size=2, master_seed=12)

    def test_jobs_and_cache_do_not_change_results(self, tmp_path):
        plain = figure3_series(**self.ARGS)
        sharded = figure3_series(
            **self.ARGS, jobs=2, cache_dir=tmp_path, shard_trials=2
        )
        assert sharded.points == plain.points

    def test_warm_cache_reproduces_the_figure(self, tmp_path):
        cold = figure3_series(**self.ARGS, cache_dir=tmp_path)
        warm = figure3_series(**self.ARGS, cache_dir=tmp_path)
        assert warm.points == cold.points
