"""Property tests for the self-contained HTML report renderer."""

from html.parser import HTMLParser

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.html_report import (
    ReportFigure,
    render_paper_report,
    result_table,
)
from repro.experiments.records import ExperimentResult, SeriesPoint

#: Elements that never take a closing tag in HTML.
_VOID_ELEMENTS = {
    "area", "base", "br", "col", "embed", "hr", "img", "input",
    "link", "meta", "param", "source", "track", "wbr",
}


class _WellFormedChecker(HTMLParser):
    """Asserts balanced tags and collects the text content."""

    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.stack = []
        self.text = []
        self.errors = []

    def handle_starttag(self, tag, attrs):
        if tag not in _VOID_ELEMENTS:
            self.stack.append(tag)

    def handle_startendtag(self, tag, attrs):
        # Self-closed (SVG-style) tags open and close in place.
        pass

    def handle_endtag(self, tag):
        if tag in _VOID_ELEMENTS:
            return
        if not self.stack:
            self.errors.append(f"closing </{tag}> with nothing open")
        elif self.stack[-1] != tag:
            self.errors.append(
                f"closing </{tag}> but <{self.stack[-1]}> is open"
            )
        else:
            self.stack.pop()

    def handle_data(self, data):
        self.text.append(data)


def assert_well_formed(document):
    checker = _WellFormedChecker()
    checker.feed(document)
    checker.close()
    assert not checker.errors, checker.errors
    assert not checker.stack, f"unclosed tags: {checker.stack}"
    return checker


# Text strategies deliberately include markup metacharacters: the
# escaping contract is that *no* user-controlled string can inject tags.
_names = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs", "Cc"),
    ),
    min_size=1,
    max_size=24,
)
_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6
)


@st.composite
def experiment_results(draw):
    num_points = draw(st.integers(min_value=0, max_value=6))
    points = [
        SeriesPoint(
            series=draw(_names),
            x=draw(_floats),
            mean=draw(_floats),
            std=draw(st.floats(0, 1e3, allow_nan=False)),
            trials=draw(st.integers(0, 100)),
        )
        for _ in range(num_points)
    ]
    return ExperimentResult(
        experiment=draw(_names), points=points, master_seed=draw(
            st.integers(0, 2**31)
        )
    )


@st.composite
def report_figures(draw):
    return ReportFigure(
        name=draw(_names),
        title=draw(_names),
        description=draw(_names),
        result=draw(st.one_of(st.none(), experiment_results())),
        y_label=draw(_names),
        x_label=draw(_names),
        csv_filename=draw(st.one_of(st.just(""), _names)),
        spec_hash=draw(st.just("") | st.text("0123456789abcdef", min_size=64, max_size=64)),
        trials=draw(st.integers(0, 100)),
        seed=draw(st.integers(0, 2**31)),
    )


class TestRenderedDocument:
    @settings(max_examples=40, deadline=None)
    @given(
        figures=st.lists(report_figures(), max_size=3),
        provenance=st.dictionaries(_names, _names, max_size=4),
        drift=st.lists(
            st.tuples(
                _names,
                st.sampled_from(["PASS", "DRIFT", "MISSING", "SKIP"]),
                _names,
            ),
            max_size=4,
        ),
    )
    def test_always_well_formed_html(self, figures, provenance, drift):
        document = render_paper_report(
            figures, provenance=provenance, drift_rows=drift
        )
        assert document.startswith("<!DOCTYPE html>")
        assert_well_formed(document)

    @settings(max_examples=25, deadline=None)
    @given(result=experiment_results())
    def test_figures_with_points_embed_an_svg(self, result):
        figure = ReportFigure(
            name="x", title="t", description="d", result=result
        )
        document = render_paper_report([figure], provenance={})
        if result.points:
            assert "<svg" in document
        assert_well_formed(document)

    def test_hostile_strings_are_escaped(self):
        hostile = '<script>alert("pwn")</script>'
        result = ExperimentResult(
            experiment=hostile,
            points=[
                SeriesPoint(series=hostile, x=1.0, mean=2.0, std=0.0,
                            trials=3)
            ],
            master_seed=1,
        )
        figure = ReportFigure(
            name=hostile, title=hostile, description=hostile, result=result
        )
        document = render_paper_report(
            [figure],
            provenance={hostile: hostile},
            drift_rows=[(hostile, "DRIFT", hostile)],
            title=hostile,
            now=hostile,
        )
        assert "<script>" not in document
        assert_well_formed(document)

    def test_byte_identical_regeneration(self):
        result = ExperimentResult(
            experiment="e",
            points=[
                SeriesPoint(series="s", x=1.0, mean=2.0, std=0.5, trials=3)
            ],
            master_seed=9,
        )
        figure = ReportFigure(
            name="e", title="T", description="D", result=result
        )
        render = lambda: render_paper_report(  # noqa: E731
            [figure], provenance={"python": "3"}, drift_rows=[("e", "PASS", "ok")]
        )
        assert render() == render()

    def test_stamp_only_with_now(self):
        without = render_paper_report([], provenance={})
        with_now = render_paper_report([], provenance={}, now="NOW-MARK")
        assert "NOW-MARK" not in without
        assert "generated: NOW-MARK" in with_now


class TestResultTable:
    def test_extra_columns_render_blank_when_absent(self):
        result = ExperimentResult(
            experiment="e",
            points=[
                SeriesPoint(series="a", x=1, mean=2, std=0, trials=3,
                            extra={"ratio": 0.5}),
                SeriesPoint(series="b", x=1, mean=2, std=0, trials=3),
            ],
            master_seed=0,
        )
        table = result_table(result, extra_columns=("ratio",))
        assert "<th>ratio</th>" in table
        assert "<td>0.5</td>" in table
        assert "<td></td>" in table
        assert_well_formed(table)
