"""Tests for the Theorem 1 experiment driver."""

import pytest

from repro.experiments.lower_bound import theorem1_experiment


class TestTheorem1Experiment:
    @pytest.fixture(scope="class")
    def result(self):
        return theorem1_experiment(
            sides=(3, 5, 7), trials=10, master_seed=77, validate=True
        )

    def test_two_series(self, result):
        assert set(result.series_names()) == {"afek-sweep", "feedback"}

    def test_x_is_vertex_count(self, result):
        # side s with copies=s has s^2 (s+1)/2 vertices.
        xs = result.xs("feedback")
        assert xs == [18.0, 75.0, 196.0]

    def test_side_recorded_in_extra(self, result):
        sides = [p.extra["side"] for p in result.series("feedback")]
        assert sides == [3.0, 5.0, 7.0]

    def test_sweep_needs_more_rounds(self, result):
        """The separation the paper proves: global schedules lose on the
        clique family."""
        for n in result.xs("feedback"):
            sweep = next(p for p in result.series("afek-sweep") if p.x == n)
            feedback = next(p for p in result.series("feedback") if p.x == n)
            assert sweep.mean > feedback.mean

    def test_gap_widens_with_size(self, result):
        ratios = [
            s.mean / f.mean
            for s, f in zip(
                result.series("afek-sweep"), result.series("feedback")
            )
        ]
        assert ratios[-1] > ratios[0] * 0.8  # non-shrinking (noise margin)

    def test_custom_copies(self):
        result = theorem1_experiment(
            sides=(3,), trials=5, copies=2, master_seed=78
        )
        assert result.xs("feedback") == [12.0]
        assert result.parameters["copies"] == 2
