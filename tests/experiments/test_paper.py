"""Tests for the one-command paper pipeline (``repro paper``)."""

import json
import pkgutil
from pathlib import Path

import pytest

import repro.experiments
from repro.cli import main
from repro.experiments.paper import (
    EXEMPT_MODULES,
    PAPER_FORMAT_VERSION,
    REGISTRY,
    compare_golden,
    experiment_names,
    run_paper,
    select_experiments,
    write_golden,
)
from repro.sweep.rundb import RunDB

GOLDEN_DIR = Path(__file__).parent / "golden_paper"

# The registry experiments the warm/cold identity tests drive.  A small
# orchestrated subset plus the (artefact-cached) bio ablation keeps the
# suite fast while still covering both caching regimes.
FAST_SUBSET = ("grid", "theorem1", "bio")


@pytest.fixture(scope="module")
def pipelines(tmp_path_factory):
    """One cold and one warm pipeline run sharing a cache, module-wide."""
    root = tmp_path_factory.mktemp("paper")
    cache = root / "cache"
    kwargs = dict(
        trials=2,
        cache_dir=cache,
        only=FAST_SUBSET,
        golden_dir=None,
        bench_dir=None,
        rundb_dir=root / "rundb",
    )
    cold = run_paper(out_dir=root / "cold", **kwargs)
    warm = run_paper(out_dir=root / "warm", **kwargs)
    return cold, warm


class TestRegistry:
    def test_every_experiment_module_is_registered_or_exempt(self):
        registered = {entry.module for entry in REGISTRY}
        modules = {
            module.name
            for module in pkgutil.iter_modules(repro.experiments.__path__)
        }
        unaccounted = modules - registered - set(EXEMPT_MODULES)
        assert not unaccounted, (
            f"experiments modules {sorted(unaccounted)} are neither in the "
            "paper registry nor exempted in EXEMPT_MODULES — register the "
            "new experiment or exempt it with a reason"
        )
        # Exemptions and registrations must reference real modules, so
        # neither list rots as modules are renamed or deleted.
        assert set(EXEMPT_MODULES) <= modules
        assert registered <= modules

    def test_names_are_unique_and_ordered(self):
        names = experiment_names()
        assert len(names) == len(set(names))
        assert names[0] == "figure3"
        assert "bio" in names

    def test_select_subset_preserves_registry_order(self):
        picked = select_experiments(["bio", "figure3"])
        assert [entry.name for entry in picked] == ["figure3", "bio"]

    def test_select_unknown_name_raises(self):
        with pytest.raises(ValueError, match="nosuch"):
            select_experiments(["nosuch"])

    def test_only_bio_is_non_orchestrated(self):
        outside = [e.name for e in REGISTRY if not e.orchestrated]
        assert outside == ["bio"]
        # Non-orchestrated entries must pin their scale parameters in the
        # fingerprint; otherwise the artefact cache would serve stale
        # bytes across a scale change.
        assert all(e.fingerprint for e in REGISTRY if not e.orchestrated)


class TestWarmRerunIdentity:
    def test_csvs_are_byte_identical(self, pipelines):
        cold, warm = pipelines
        for a, b in zip(cold.artefacts, warm.artefacts):
            assert a.name == b.name
            assert a.csv == b.csv

    def test_html_report_is_byte_identical(self, pipelines):
        cold, warm = pipelines
        assert (
            cold.report_path.read_bytes() == warm.report_path.read_bytes()
        )

    def test_warm_run_executes_no_shards(self, pipelines):
        cold, warm = pipelines
        assert sum(a.shards_executed for a in cold.artefacts) > 0
        assert sum(a.shards_executed for a in warm.artefacts) == 0
        assert all(
            a.shards_cached == a.shards_total
            for a in warm.artefacts
            if a.shards_total
        )

    def test_warm_bio_serves_from_artefact_cache(self, pipelines):
        cold, warm = pipelines
        assert not next(
            a for a in cold.artefacts if a.name == "bio"
        ).artefact_cached
        assert next(
            a for a in warm.artefacts if a.name == "bio"
        ).artefact_cached

    def test_spec_hashes_are_stable_and_distinct(self, pipelines):
        cold, warm = pipelines
        cold_hashes = {a.name: a.spec_hash for a in cold.artefacts}
        warm_hashes = {a.name: a.spec_hash for a in warm.artefacts}
        assert cold_hashes == warm_hashes
        assert len(set(cold_hashes.values())) == len(cold_hashes)

    def test_csv_files_written_to_out_dir(self, pipelines):
        cold, _ = pipelines
        for artefact in cold.artefacts:
            path = cold.csv_dir / f"{artefact.name}.csv"
            assert path.read_text(encoding="utf-8") == artefact.csv

    def test_now_stamp_is_opt_in(self, pipelines, tmp_path):
        cold, _ = pipelines
        assert "generated:" not in cold.report_path.read_text(
            encoding="utf-8"
        )
        stamped = run_paper(
            trials=2,
            only=("bio",),
            cache_dir=tmp_path / "c",
            out_dir=tmp_path / "o",
            golden_dir=None,
            bench_dir=None,
            now="2026-01-01T00:00:00",
        )
        assert "generated: 2026-01-01T00:00:00" in stamped.report_path.read_text(
            encoding="utf-8"
        )


class TestRunDBRecording:
    def test_one_record_per_experiment_per_run(self, pipelines):
        cold, warm = pipelines
        db = RunDB(cold.rundb_root)
        records = db.records()
        assert len(records) == 2 * len(FAST_SUBSET)
        run_ids = {r.run_id for r in records}
        assert len(run_ids) == 2

    def test_warm_records_show_full_cache_hits(self, pipelines):
        cold, warm = pipelines
        db = RunDB(warm.rundb_root)
        latest_grid = db.latest("grid")
        assert latest_grid is not None
        assert latest_grid.shards_executed == 0
        assert latest_grid.cache_hit_rate == 1.0

    def test_index_summarises_experiments(self, pipelines):
        cold, _ = pipelines
        index = RunDB(cold.rundb_root).index()
        assert set(index["experiments"]) == set(FAST_SUBSET)
        assert index["records"] == 2 * len(FAST_SUBSET)


class TestDrift:
    def test_committed_goldens_cover_every_experiment(self):
        manifest = json.loads(
            (GOLDEN_DIR / "MANIFEST.json").read_text(encoding="utf-8")
        )
        assert manifest["format"] == PAPER_FORMAT_VERSION
        assert set(manifest["experiments"]) == set(experiment_names())
        for filename in manifest["experiments"].values():
            assert (GOLDEN_DIR / filename).is_file()

    def test_round_trip_against_written_goldens(self, pipelines, tmp_path):
        cold, _ = pipelines
        golden = tmp_path / "golden"
        write_golden(cold, golden)
        verdicts = compare_golden(cold.artefacts, golden, trials=cold.trials)
        assert [v.status for v in verdicts] == ["PASS"] * len(cold.artefacts)

    def test_drift_reports_first_differing_line(self, pipelines, tmp_path):
        cold, _ = pipelines
        golden = tmp_path / "golden"
        write_golden(cold, golden)
        target = golden / "grid.csv"
        lines = target.read_text(encoding="utf-8").splitlines()
        lines[1] = lines[1].replace("feedback", "fEEdback")
        target.write_text("\n".join(lines) + "\n", encoding="utf-8")
        verdicts = {
            v.artefact: v
            for v in compare_golden(cold.artefacts, golden, cold.trials)
        }
        assert verdicts["grid"].status == "DRIFT"
        assert "line 2" in verdicts["grid"].detail
        assert verdicts["bio"].status == "PASS"

    def test_trials_mismatch_skips(self, pipelines, tmp_path):
        cold, _ = pipelines
        golden = tmp_path / "golden"
        write_golden(cold, golden)
        verdicts = compare_golden(
            cold.artefacts, golden, trials=cold.trials + 1
        )
        assert {v.status for v in verdicts} == {"SKIP"}

    def test_absent_golden_file_is_missing(self, pipelines, tmp_path):
        cold, _ = pipelines
        golden = tmp_path / "golden"
        write_golden(cold, golden)
        (golden / "theorem1.csv").unlink()
        verdicts = {
            v.artefact: v.status
            for v in compare_golden(cold.artefacts, golden, cold.trials)
        }
        assert verdicts["theorem1"] == "MISSING"

    def test_no_golden_dir_is_missing(self, pipelines):
        cold, _ = pipelines
        verdicts = compare_golden(cold.artefacts, None, cold.trials)
        assert {v.status for v in verdicts} == {"MISSING"}
        assert not cold.check_passed

    def test_check_passed_requires_all_pass(self, pipelines, tmp_path):
        cold, _ = pipelines
        golden = tmp_path / "golden"
        write_golden(cold, golden)
        passing = run_paper(
            trials=cold.trials,
            cache_dir=tmp_path / "c2",
            only=FAST_SUBSET,
            out_dir=tmp_path / "o2",
            golden_dir=golden,
            bench_dir=None,
        )
        assert passing.check_passed
        assert [v.status for v in passing.drift] == ["PASS"] * len(
            FAST_SUBSET
        )


class TestCLI:
    def test_check_exit_codes(self, tmp_path, capsys):
        out = tmp_path / "out"
        cache = tmp_path / "cache"
        golden = tmp_path / "golden"
        base = [
            "paper", "--trials", "2", "--only", "grid", "bio",
            "--out", str(out), "--cache-dir", str(cache),
            "--rundb", str(tmp_path / "db"), "--bench-dir", str(tmp_path),
            "--quiet",
        ]
        # No goldens yet: --check must fail (MISSING is not verified).
        assert main(base + ["--golden", str(golden), "--check"]) == 1
        # Pin goldens, then the same invocation passes.
        assert main(base + ["--write-golden", str(golden)]) == 0
        assert main(base + ["--golden", str(golden), "--check"]) == 0
        # Perturb one golden: --check fails again.
        target = golden / "bio.csv"
        target.write_text(
            target.read_text(encoding="utf-8") + "tampered,0,0,0,0\n",
            encoding="utf-8",
        )
        assert main(base + ["--golden", str(golden), "--check"]) == 1
        capsys.readouterr()

    def test_list_prints_registry(self, capsys):
        assert main(["paper", "--list"]) == 0
        printed = capsys.readouterr().out.split()
        assert printed == experiment_names()

    def test_unknown_only_exits_with_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit, match="nosuch"):
            main(["paper", "--only", "nosuch", "--out", str(tmp_path / "o")])
        capsys.readouterr()

    def test_committed_goldens_verify_via_cli(self, tmp_path, capsys):
        """The committed goldens PASS `repro paper --check` at trials=3.

        This is the same leg CI runs; a change to any experiment's bytes
        must come with regenerated goldens.
        """
        rc = main(
            [
                "paper", "--check", "--quiet",
                "--out", str(tmp_path / "out"),
                "--cache-dir", str(tmp_path / "cache"),
                "--rundb", str(tmp_path / "db"),
                "--golden", str(GOLDEN_DIR),
                "--bench-dir", str(tmp_path),
            ]
        )
        assert rc == 0
        capsys.readouterr()
