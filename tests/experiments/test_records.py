"""Tests for experiment result records and serialisation."""

import json

import pytest

from repro.experiments.records import (
    ExperimentResult,
    SeriesPoint,
    results_from_json,
    results_to_csv,
    results_to_json,
)


def sample_result():
    points = [
        SeriesPoint("feedback", 100.0, 15.2, 2.1, 50),
        SeriesPoint("feedback", 200.0, 18.0, 2.4, 50),
        SeriesPoint("afek-sweep", 100.0, 44.0, 6.0, 50, extra={"note": 1.0}),
        SeriesPoint("afek-sweep", 200.0, 58.5, 7.1, 50),
    ]
    return ExperimentResult(
        experiment="demo", points=points, master_seed=9, parameters={"p": 0.5}
    )


class TestExperimentResult:
    def test_series_names_in_order(self):
        assert sample_result().series_names() == ["feedback", "afek-sweep"]

    def test_series_sorted_by_x(self):
        result = sample_result()
        xs = [p.x for p in result.series("feedback")]
        assert xs == sorted(xs)

    def test_xs_and_means(self):
        result = sample_result()
        assert result.xs("afek-sweep") == [100.0, 200.0]
        assert result.means("afek-sweep") == [44.0, 58.5]

    def test_unknown_series_empty(self):
        assert sample_result().series("nope") == []


class TestJson:
    def test_round_trip(self):
        result = sample_result()
        restored = results_from_json(results_to_json(result))
        assert restored.experiment == result.experiment
        assert restored.master_seed == result.master_seed
        assert restored.parameters == result.parameters
        assert restored.points == result.points

    def test_json_is_valid(self):
        payload = json.loads(results_to_json(sample_result()))
        assert payload["experiment"] == "demo"
        assert len(payload["points"]) == 4

    def test_extra_preserved(self):
        restored = results_from_json(results_to_json(sample_result()))
        assert restored.points[2].extra == {"note": 1.0}


class TestCsv:
    def test_header_and_rows(self):
        csv_text = results_to_csv(sample_result())
        lines = csv_text.strip().split("\n")
        assert lines[0] == "series,x,mean,std,trials"
        assert len(lines) == 5
        assert lines[1].startswith("feedback,100.0,15.2")


# The exact serialised forms are a pinned contract: the sweep store's
# aggregation path (`repro.sweep.aggregate` → SeriesPoint → CSV/JSON)
# and any external consumer of exported results depend on them.  Update
# these snapshots only for a deliberate schema change.

GOLDEN_CSV = """\
series,x,mean,std,trials
feedback,100.0,15.2,2.1,50
feedback,200.0,18.0,2.4,50
afek-sweep,100.0,44.0,6.0,50
afek-sweep,200.0,58.5,7.1,50
"""


class TestGoldenSnapshots:
    def test_csv_snapshot(self):
        assert results_to_csv(sample_result()) == GOLDEN_CSV

    def test_json_schema_keys(self):
        payload = json.loads(results_to_json(sample_result()))
        assert sorted(payload) == [
            "experiment",
            "master_seed",
            "parameters",
            "points",
        ]
        assert sorted(payload["points"][0]) == [
            "extra",
            "mean",
            "series",
            "std",
            "trials",
            "x",
        ]

    def test_json_round_trip_preserves_every_field(self):
        result = sample_result()
        restored = results_from_json(results_to_json(result))
        for original, back in zip(result.points, restored.points):
            assert original == back
        assert restored == result
