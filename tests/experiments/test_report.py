"""Tests for the one-shot reproduction report."""

import pytest

from repro.experiments.report import build_report, build_sections
from repro.telemetry import Collector, capture


class TestReport:
    @pytest.fixture(scope="class")
    def sections(self):
        return build_sections(trials=4, master_seed=11)

    def test_five_sections(self, sections):
        titles = [s.title for s in sections]
        assert len(titles) == 5
        assert any("Figure 3" in t for t in titles)
        assert any("Theorem 1" in t for t in titles)

    def test_all_sections_pass(self, sections):
        """The reproduction's claims must hold even at 4 trials."""
        for section in sections:
            assert section.passed, section.title

    def test_bodies_nonempty(self, sections):
        for section in sections:
            assert section.body.strip()

    def test_full_report_renders(self):
        text = build_report(trials=4, master_seed=11)
        assert "verdicts:" in text
        assert "[PASS]" in text
        assert "[FAIL]" not in text

    def test_trials_validation(self):
        with pytest.raises(ValueError):
            build_sections(trials=1)


class TestReportCaching:
    """The report routes through the cached orchestrator."""

    def test_byte_stable_and_warm_from_cache(self, tmp_path):
        cache = tmp_path / "cache"
        cold = build_report(trials=2, master_seed=11, cache_dir=cache)

        with capture(Collector()) as collector:
            warm = build_report(trials=2, master_seed=11, cache_dir=cache)
        assert warm == cold
        # Every orchestrated section served every shard from the store;
        # only the (deliberately uncached) factor ablation ran fresh.
        assert collector.counters.get("sweep.cache.miss", 0) == 0
        assert collector.counters.get("sweep.cache.hit", 0) > 0

    def test_cache_dir_does_not_change_bytes(self, tmp_path):
        uncached = build_report(trials=2, master_seed=11)
        cached = build_report(
            trials=2, master_seed=11, cache_dir=tmp_path / "cache"
        )
        assert uncached == cached
