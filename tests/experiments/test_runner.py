"""Tests for the generic trial runner."""

import pytest

from repro.algorithms.feedback import FeedbackMIS
from repro.algorithms.greedy import SequentialGreedyMIS
from repro.beeping.faults import FaultModel
from repro.experiments.runner import run_trials
from repro.graphs.random_graphs import gnp_random_graph


def graph_factory(rng):
    return gnp_random_graph(25, 0.4, rng)


class TestRunTrials:
    def test_outcome_count_and_fields(self):
        outcomes = run_trials(FeedbackMIS, graph_factory, 5, master_seed=1)
        assert len(outcomes) == 5
        for index, outcome in enumerate(outcomes):
            assert outcome.trial == index
            assert outcome.rounds >= 1
            assert outcome.mis_size >= 1
            assert outcome.mean_beeps_per_node >= 0.0

    def test_reproducible(self):
        a = run_trials(FeedbackMIS, graph_factory, 4, master_seed=2)
        b = run_trials(FeedbackMIS, graph_factory, 4, master_seed=2)
        assert a == b

    def test_seed_changes_outcomes(self):
        a = run_trials(FeedbackMIS, graph_factory, 4, master_seed=3)
        b = run_trials(FeedbackMIS, graph_factory, 4, master_seed=4)
        assert a != b

    def test_graphs_vary_between_trials(self):
        outcomes = run_trials(FeedbackMIS, graph_factory, 6, master_seed=5)
        # Different graphs -> almost surely different MIS sizes/rounds mix.
        assert len({(o.rounds, o.mis_size) for o in outcomes}) > 1

    def test_faults_passed_through(self):
        faults = FaultModel(spurious_beep_probability=0.3)
        outcomes = run_trials(
            FeedbackMIS, graph_factory, 3, master_seed=6, faults=faults
        )
        assert len(outcomes) == 3

    def test_non_beeping_algorithm(self):
        outcomes = run_trials(
            SequentialGreedyMIS, graph_factory, 3, master_seed=7
        )
        assert all(o.rounds == 1 for o in outcomes)
        assert all(o.mean_beeps_per_node == 0.0 for o in outcomes)

    def test_trials_validation(self):
        with pytest.raises(ValueError):
            run_trials(FeedbackMIS, graph_factory, 0, master_seed=8)
