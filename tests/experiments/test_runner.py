"""Tests for the generic trial runner."""

import pytest

from repro.algorithms.feedback import FeedbackMIS
from repro.algorithms.greedy import SequentialGreedyMIS
from repro.beeping.faults import FaultModel
from repro.experiments.runner import run_trials
from repro.graphs.random_graphs import gnp_random_graph


def graph_factory(rng):
    return gnp_random_graph(25, 0.4, rng)


class TestRunTrials:
    def test_outcome_count_and_fields(self):
        outcomes = run_trials(FeedbackMIS, graph_factory, 5, master_seed=1)
        assert len(outcomes) == 5
        for index, outcome in enumerate(outcomes):
            assert outcome.trial == index
            assert outcome.rounds >= 1
            assert outcome.mis_size >= 1
            assert outcome.mean_beeps_per_node >= 0.0

    def test_reproducible(self):
        a = run_trials(FeedbackMIS, graph_factory, 4, master_seed=2)
        b = run_trials(FeedbackMIS, graph_factory, 4, master_seed=2)
        assert a == b

    def test_seed_changes_outcomes(self):
        a = run_trials(FeedbackMIS, graph_factory, 4, master_seed=3)
        b = run_trials(FeedbackMIS, graph_factory, 4, master_seed=4)
        assert a != b

    def test_graphs_vary_between_trials(self):
        outcomes = run_trials(FeedbackMIS, graph_factory, 6, master_seed=5)
        # Different graphs -> almost surely different MIS sizes/rounds mix.
        assert len({(o.rounds, o.mis_size) for o in outcomes}) > 1

    def test_faults_passed_through(self):
        faults = FaultModel(spurious_beep_probability=0.3)
        outcomes = run_trials(
            FeedbackMIS, graph_factory, 3, master_seed=6, faults=faults
        )
        assert len(outcomes) == 3

    def test_non_beeping_algorithm(self):
        outcomes = run_trials(
            SequentialGreedyMIS, graph_factory, 3, master_seed=7
        )
        assert all(o.rounds == 1 for o in outcomes)
        assert all(o.mean_beeps_per_node == 0.0 for o in outcomes)

    def test_trials_validation(self):
        with pytest.raises(ValueError):
            run_trials(FeedbackMIS, graph_factory, 0, master_seed=8)


class TestRunFleetTrials:
    def _run(self, **kwargs):
        from repro.engine.rules import FeedbackRule
        from repro.experiments.runner import run_fleet_trials

        defaults = dict(trials=9, master_seed=21, graphs=3)
        defaults.update(kwargs)
        return run_fleet_trials(FeedbackRule, graph_factory, **defaults)

    def test_outcome_count_and_fields(self):
        outcomes = self._run()
        assert len(outcomes) == 9
        for index, outcome in enumerate(outcomes):
            assert outcome.trial == index
            assert outcome.rounds >= 1
            assert outcome.mis_size >= 1
            assert outcome.mean_beeps_per_node > 0.0
            assert outcome.messages == outcome.bits > 0

    def test_reproducible(self):
        assert self._run() == self._run()

    def test_seed_changes_outcomes(self):
        assert self._run(master_seed=22) != self._run(master_seed=23)

    def test_uneven_split_runs_every_trial(self):
        outcomes = self._run(trials=7, graphs=3)
        assert [o.trial for o in outcomes] == list(range(7))

    @pytest.mark.parametrize("rng_mode", ("stream", "counter"))
    def test_matches_per_trial_engine_on_same_seeds(self, rng_mode):
        """Group g / trial t must equal a lone run on seed (g, 1, t) in
        the same rng mode — for counter mode this pins the armada batch
        to the per-trial engines."""
        from repro.beeping.rng import RngStream, derive_seed
        from repro.engine.rules import FeedbackRule
        from repro.engine.simulator import VectorizedSimulator

        outcomes = self._run(
            trials=6, graphs=2, master_seed=31, rng_mode=rng_mode
        )
        stream = RngStream(31)
        flat = 0
        for g in range(2):
            graph = graph_factory(stream.child(g, 0))
            simulator = VectorizedSimulator(graph)
            for t in range(3):
                lone = simulator.run(
                    FeedbackRule(),
                    derive_seed(31, g, 1, t),
                    rng_mode=rng_mode,
                )
                assert outcomes[flat].rounds == lone.rounds
                assert outcomes[flat].mis_size == len(lone.mis)
                expected_bits = sum(
                    int(lone.beeps_by_node[v]) * graph.degree(v)
                    for v in graph.vertices()
                )
                assert outcomes[flat].bits == expected_bits
                flat += 1

    def test_default_mode_is_counter(self):
        """The fleet/sweep hot path runs the counter discipline unless a
        caller pins the golden-trace stream mode."""
        assert self._run() == self._run(rng_mode="counter")
        assert self._run() != self._run(rng_mode="stream")

    def test_trial_range_windows_concatenate_in_counter_mode(self):
        """Armada batching of partial groups must keep the shard
        contract: window outcomes equal the slice of the full run."""
        full = self._run(trials=9, graphs=3)
        parts = []
        for window in ((0, 2), (2, 7), (7, 9)):
            parts.extend(self._run(trials=9, graphs=3, trial_range=window))
        assert parts == full

    def test_counter_mode_handles_heterogeneous_graph_sizes(self):
        """A graph factory with size depending on the draw cannot be
        block-stacked; the per-graph counter fallback must still match
        the per-trial engines."""
        from repro.beeping.rng import RngStream, derive_seed
        from repro.engine.rules import FeedbackRule
        from repro.engine.simulator import VectorizedSimulator
        from repro.experiments.runner import run_fleet_trials

        def varying_factory(rng):
            return gnp_random_graph(10 + rng.randrange(12), 0.4, rng)

        outcomes = run_fleet_trials(
            FeedbackRule, varying_factory, 4, master_seed=77, graphs=2
        )
        assert [o.trial for o in outcomes] == list(range(4))
        stream = RngStream(77)
        sizes = {varying_factory(stream.child(g, 0)).num_vertices
                 for g in range(2)}
        assert len(sizes) == 2  # the fallback was actually exercised
        flat = 0
        for g in range(2):
            graph = varying_factory(RngStream(77).child(g, 0))
            simulator = VectorizedSimulator(graph)
            for t in range(2):
                lone = simulator.run(
                    FeedbackRule(),
                    derive_seed(77, g, 1, t),
                    rng_mode="counter",
                )
                assert outcomes[flat].rounds == lone.rounds
                assert outcomes[flat].mis_size == len(lone.mis)
                flat += 1

    def test_graph_seed_independent_of_trial_seeds(self):
        """The graph draw path (g, 0) must not collide with any trial path."""
        from repro.beeping.rng import RngStream, derive_seed_block

        stream = RngStream(21)
        graph_seed = stream.child_seed(0, 0)
        trial_seeds = {int(s) for s in derive_seed_block(21, 0, 1, count=16)}
        assert graph_seed not in trial_seeds

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="trials"):
            self._run(trials=0)
        with pytest.raises(ValueError, match="graphs"):
            self._run(graphs=0)


class TestRunFleetTrialsMessages:
    """The message-passing rules ride the same fleet runner contract."""

    def _run(self, rule_name="luby-permutation", **kwargs):
        from repro.engine.messages import MESSAGE_RULES
        from repro.experiments.runner import run_fleet_trials

        defaults = dict(trials=9, master_seed=43, graphs=3)
        defaults.update(kwargs)
        return run_fleet_trials(
            MESSAGE_RULES[rule_name], graph_factory, **defaults
        )

    def test_outcome_fields(self):
        outcomes = self._run()
        assert [o.trial for o in outcomes] == list(range(9))
        for outcome in outcomes:
            assert outcome.rounds >= 1
            assert outcome.mis_size >= 1
            assert outcome.mean_beeps_per_node == 0.0  # no beeps
            assert outcome.messages > 0
            assert outcome.bits >= outcome.messages

    def test_trial_range_windows_concatenate(self):
        """Windowed message-armada runs keep the shard contract."""
        full = self._run(rule_name="metivier")
        parts = []
        for window in ((0, 2), (2, 7), (7, 9)):
            parts.extend(self._run(rule_name="metivier", trial_range=window))
        assert parts == full

    def test_matches_message_fleet_on_same_seeds(self):
        """Group g / trial t must equal a lone message-fleet run on the
        group's seed window — the armada stacking never changes rows."""
        from repro.beeping.rng import RngStream, derive_seed_block
        from repro.engine.messages import (
            MESSAGE_RULES,
            MessageFleetSimulator,
        )

        outcomes = self._run(trials=6, graphs=2, master_seed=59)
        stream = RngStream(59)
        flat = 0
        for g in range(2):
            graph = graph_factory(stream.child(g, 0))
            run = MessageFleetSimulator(graph).run_fleet(
                MESSAGE_RULES["luby-permutation"](),
                derive_seed_block(59, g, 1, count=3),
            )
            for t in range(3):
                assert outcomes[flat].rounds == int(run.rounds[t])
                assert outcomes[flat].mis_size == int(
                    run.membership[t].sum()
                )
                assert outcomes[flat].messages == int(run.messages[t])
                assert outcomes[flat].bits == int(run.bits[t])
                flat += 1

    def test_stream_mode_rejected(self):
        with pytest.raises(ValueError, match="counter"):
            self._run(rng_mode="stream")

    def test_faults_rejected(self):
        from repro.beeping.faults import FaultModel

        with pytest.raises(ValueError, match="fault"):
            self._run(faults=FaultModel(beep_loss_probability=0.2))
