"""Tests for the MIS-size experiment."""

import pytest

from repro.experiments.sizes import mis_size_experiment


class TestMisSizeExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return mis_size_experiment(n=24, trials=6, master_seed=5)

    def test_one_point_per_algorithm_plus_optimum(self, result):
        names = result.series_names()
        assert "feedback" in names
        assert "optimum" in names
        assert len(result.points) == 5

    def test_optimum_dominates(self, result):
        optimum = next(p for p in result.points if p.series == "optimum")
        for point in result.points:
            assert point.mean <= optimum.mean + 1e-9

    def test_ratios_in_unit_interval(self, result):
        for point in result.points:
            ratio = point.extra.get("optimum_ratio")
            assert ratio is not None
            assert 0.0 < ratio <= 1.0

    def test_ratios_reasonably_high(self, result):
        """Any MIS on G(n, 0.3) lands within a constant of the optimum."""
        for point in result.points:
            assert point.extra["optimum_ratio"] > 0.5

    def test_optimum_guard(self):
        with pytest.raises(ValueError, match="exact optimum"):
            mis_size_experiment(n=100, trials=2, include_optimum=True)

    def test_large_n_skips_optimum(self):
        result = mis_size_experiment(
            n=80,
            trials=2,
            algorithm_names=("greedy",),
            master_seed=6,
        )
        assert result.parameters["include_optimum"] is False
        assert result.series_names() == ["greedy"]
        assert result.points[0].extra == {}

    def test_jobs_and_cache_do_not_change_results(self, tmp_path):
        args = dict(
            n=18,
            trials=4,
            algorithm_names=("feedback", "greedy"),
            master_seed=8,
        )
        plain = mis_size_experiment(**args)
        sharded = mis_size_experiment(
            **args, jobs=2, cache_dir=tmp_path, shard_trials=2
        )
        assert sharded.points == plain.points
        warm = mis_size_experiment(**args, cache_dir=tmp_path)
        assert warm.points == plain.points
