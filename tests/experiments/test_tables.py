"""Tests for ASCII table formatting."""

import pytest

from repro.experiments.records import ExperimentResult, SeriesPoint
from repro.experiments.tables import format_experiment, format_table


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["a", "bbb"], [[1, 2], [333, 4]])
        lines = table.split("\n")
        assert lines[0] == "a   | bbb"
        assert lines[1] == "----+----"
        assert lines[2] == "1   | 2  "
        assert lines[3] == "333 | 4  "

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            format_table([], [])

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="does not match"):
            format_table(["a", "b"], [[1]])

    def test_no_rows(self):
        table = format_table(["x"], [])
        assert table.split("\n") == ["x", "-"]


class TestFormatExperiment:
    def test_contains_all_points(self):
        result = ExperimentResult(
            experiment="demo",
            points=[
                SeriesPoint("s1", 10.0, 1.234, 0.5, 3),
                SeriesPoint("s2", 20.0, 2.0, 0.1, 3),
            ],
            master_seed=5,
        )
        text = format_experiment(result)
        assert "experiment: demo" in text
        assert "s1" in text and "s2" in text
        assert "1.23" in text

    def test_precision(self):
        result = ExperimentResult(
            experiment="p",
            points=[SeriesPoint("s", 1.0, 1.23456, 0.0, 1)],
            master_seed=0,
        )
        assert "1.2346" in format_experiment(result, precision=4)
