"""Tests for the workload registry."""

from random import Random

import pytest

from repro.experiments.workloads import available_workloads, make_workload


class TestRegistry:
    def test_names_sorted_and_nonempty(self):
        names = available_workloads()
        assert names == sorted(names)
        assert "gnp-half" in names
        assert "theorem1" in names

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="available"):
            make_workload("bogus", 10, Random(1))

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            make_workload("gnp-half", 0, Random(1))


class TestInstantiation:
    @pytest.mark.parametrize("name", available_workloads())
    def test_every_workload_builds(self, name):
        graph = make_workload(name, 50, Random(7))
        assert graph.num_vertices >= 1
        # Size is approximate for structured families, but in the ballpark.
        assert graph.num_vertices <= 200

    @pytest.mark.parametrize("name", available_workloads())
    def test_every_workload_supports_mis(self, name):
        from repro.algorithms.feedback import FeedbackMIS

        graph = make_workload(name, 40, Random(8))
        FeedbackMIS().run(graph, Random(9)).verify()

    def test_grid_is_square(self):
        graph = make_workload("grid", 49, Random(1))
        assert graph.num_vertices == 49

    def test_deterministic_given_rng(self):
        a = make_workload("gnp-half", 30, Random(5))
        b = make_workload("gnp-half", 30, Random(5))
        assert a == b

    def test_sparse_mean_degree(self):
        from repro.graphs.metrics import mean_degree

        graph = make_workload("gnp-sparse", 200, Random(6))
        assert 4.0 < mean_degree(graph) < 12.0
