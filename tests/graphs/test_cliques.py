"""Unit tests for clique families and the Theorem 1 construction."""

import pytest

from repro.graphs.cliques import (
    clique_membership,
    disjoint_cliques,
    theorem1_clique_sizes,
    theorem1_family,
)


class TestDisjointCliques:
    def test_vertex_and_edge_counts(self):
        g = disjoint_cliques([3, 2, 4])
        assert g.num_vertices == 9
        assert g.num_edges == 3 + 1 + 6

    def test_components_are_cliques(self):
        g = disjoint_cliques([4, 3])
        components = g.connected_components()
        assert sorted(len(c) for c in components) == [3, 4]
        for component in components:
            k = len(component)
            sub = g.subgraph(component)
            assert sub.num_edges == k * (k - 1) // 2

    def test_size_one_cliques_are_isolated(self):
        g = disjoint_cliques([1, 1, 1])
        assert g.num_vertices == 3
        assert g.num_edges == 0

    def test_empty_list(self):
        g = disjoint_cliques([])
        assert g.num_vertices == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            disjoint_cliques([3, -1])

    def test_membership_map(self):
        assert clique_membership([2, 3]) == [0, 0, 1, 1, 1]


class TestTheorem1Family:
    def test_default_copies_equals_side(self):
        sizes = theorem1_clique_sizes(4)
        assert sizes == [1] * 4 + [2] * 4 + [3] * 4 + [4] * 4

    def test_explicit_copies(self):
        sizes = theorem1_clique_sizes(3, copies=2)
        assert sizes == [1, 1, 2, 2, 3, 3]

    def test_vertex_count_formula(self):
        side = 5
        g = theorem1_family(side)
        # copies * side * (side + 1) / 2 with copies = side.
        assert g.num_vertices == side * side * (side + 1) // 2

    def test_contains_every_clique_size(self):
        side = 4
        g = theorem1_family(side, copies=1)
        component_sizes = sorted(
            len(c) for c in g.connected_components()
        )
        assert component_sizes == [1, 2, 3, 4]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            theorem1_family(0)
        with pytest.raises(ValueError):
            theorem1_clique_sizes(3, copies=-1)

    def test_mis_size_is_number_of_cliques(self):
        # Every MIS of a disjoint clique union picks exactly one vertex per
        # clique.
        from random import Random

        from repro.algorithms.greedy import greedy_mis
        from repro.graphs.validation import verify_mis

        g = theorem1_family(4, copies=2)
        mis = greedy_mis(g)
        verify_mis(g, mis)
        assert len(mis) == 8  # 2 copies x 4 clique sizes
