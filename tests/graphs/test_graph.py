"""Unit tests for the core Graph type."""

import pytest

from repro.graphs.graph import Graph, GraphBuilder


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(0)
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_isolated_vertices(self):
        g = Graph(5)
        assert g.num_vertices == 5
        assert all(g.degree(v) == 0 for v in g.vertices())

    def test_basic_edges(self):
        g = Graph(3, [(0, 1), (1, 2)])
        assert g.num_edges == 2
        assert g.neighbors(1) == (0, 2)
        assert g.neighbors(0) == (1,)

    def test_duplicate_edges_collapse(self):
        g = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            Graph(2, [(1, 1)])

    def test_out_of_range_vertex_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            Graph(2, [(0, 2)])

    def test_negative_vertex_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            Graph(2, [(-1, 0)])

    def test_negative_num_vertices_rejected(self):
        with pytest.raises(ValueError, match="num_vertices"):
            Graph(-1)

    def test_non_int_vertex_rejected(self):
        with pytest.raises(TypeError):
            Graph(3, [(0, "1")])

    def test_bool_vertex_rejected(self):
        with pytest.raises(TypeError):
            Graph(3, [(0, True)])


class TestAccessors:
    def test_neighbors_sorted(self):
        g = Graph(4, [(3, 0), (2, 0), (1, 0)])
        assert g.neighbors(0) == (1, 2, 3)

    def test_neighbor_set_membership(self):
        g = Graph(3, [(0, 1)])
        assert 1 in g.neighbor_set(0)
        assert 2 not in g.neighbor_set(0)

    def test_degrees(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degrees() == (3, 1, 1, 1)
        assert g.max_degree() == 3
        assert g.min_degree() == 1

    def test_degree_extremes_on_empty(self):
        g = Graph(0)
        assert g.max_degree() == 0
        assert g.min_degree() == 0

    def test_has_edge_symmetric(self):
        g = Graph(3, [(0, 2)])
        assert g.has_edge(0, 2)
        assert g.has_edge(2, 0)
        assert not g.has_edge(0, 1)

    def test_has_edge_rejects_bad_vertex(self):
        g = Graph(3)
        with pytest.raises(ValueError):
            g.has_edge(0, 5)

    def test_edges_canonical_order(self):
        g = Graph(4, [(3, 2), (1, 0), (2, 0)])
        assert list(g.edges()) == [(0, 1), (0, 2), (2, 3)]

    def test_density(self):
        assert Graph(2, [(0, 1)]).density() == 1.0
        assert Graph(1).density() == 0.0
        assert Graph(4, [(0, 1), (2, 3)]).density() == pytest.approx(2 / 6)

    def test_len_and_contains(self):
        g = Graph(3)
        assert len(g) == 3
        assert 2 in g
        assert 3 not in g
        assert "a" not in g

    def test_repr(self):
        assert repr(Graph(3, [(0, 1)])) == "Graph(num_vertices=3, num_edges=1)"


class TestDerivedGraphs:
    def test_subgraph_relabels(self):
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        sub = g.subgraph([1, 2, 3])
        assert sub.num_vertices == 3
        assert list(sub.edges()) == [(0, 1), (1, 2)]

    def test_subgraph_respects_order(self):
        g = Graph(3, [(0, 1)])
        sub = g.subgraph([1, 0])
        assert list(sub.edges()) == [(0, 1)]
        assert sub.num_vertices == 2

    def test_subgraph_duplicate_rejected(self):
        g = Graph(3)
        with pytest.raises(ValueError, match="duplicate"):
            g.subgraph([0, 0])

    def test_complement(self):
        g = Graph(3, [(0, 1)])
        comp = g.complement()
        assert sorted(comp.edges()) == [(0, 2), (1, 2)]

    def test_complement_involution(self):
        g = Graph(5, [(0, 1), (2, 3), (1, 4)])
        assert g.complement().complement() == g

    def test_disjoint_union(self):
        a = Graph(2, [(0, 1)])
        b = Graph(3, [(0, 2)])
        u = a.disjoint_union(b)
        assert u.num_vertices == 5
        assert sorted(u.edges()) == [(0, 1), (2, 4)]

    def test_relabel(self):
        g = Graph(3, [(0, 1)])
        h = g.relabel([2, 0, 1])
        assert list(h.edges()) == [(0, 2)]

    def test_relabel_rejects_non_permutation(self):
        g = Graph(3)
        with pytest.raises(ValueError, match="bijection"):
            g.relabel([0, 0, 1])


class TestConnectivity:
    def test_connected_path(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert g.is_connected()
        assert g.connected_components() == [[0, 1, 2, 3]]

    def test_disconnected_components(self):
        g = Graph(5, [(0, 1), (2, 3)])
        components = g.connected_components()
        assert [0, 1] in components
        assert [2, 3] in components
        assert [4] in components
        assert not g.is_connected()

    def test_empty_graph_connected(self):
        assert Graph(0).is_connected()

    def test_single_vertex_connected(self):
        assert Graph(1).is_connected()


class TestMatrixView:
    def test_adjacency_matrix(self):
        import numpy as np

        g = Graph(3, [(0, 2)])
        m = g.adjacency_matrix()
        expected = np.zeros((3, 3), dtype=bool)
        expected[0, 2] = expected[2, 0] = True
        assert (m == expected).all()

    def test_adjacency_matrix_symmetric_no_diagonal(self):
        from random import Random

        from repro.graphs.random_graphs import gnp_random_graph

        g = gnp_random_graph(20, 0.3, Random(1))
        m = g.adjacency_matrix()
        assert (m == m.T).all()
        assert not m.diagonal().any()


class TestEqualityAndHash:
    def test_equal_graphs(self):
        assert Graph(3, [(0, 1)]) == Graph(3, [(1, 0)])

    def test_unequal_graphs(self):
        assert Graph(3, [(0, 1)]) != Graph(3, [(0, 2)])
        assert Graph(3) != Graph(4)

    def test_hashable(self):
        s = {Graph(2, [(0, 1)]), Graph(2, [(1, 0)])}
        assert len(s) == 1

    def test_eq_other_type(self):
        assert Graph(1).__eq__(42) is NotImplemented


class TestGraphBuilder:
    def test_incremental_build(self):
        b = GraphBuilder()
        u, v, w = b.add_vertices(3)
        b.add_edge(u, v)
        b.add_edge(v, w)
        g = b.build()
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_add_edge_idempotent(self):
        b = GraphBuilder(2)
        b.add_edge(0, 1)
        b.add_edge(1, 0)
        assert b.build().num_edges == 1

    def test_add_clique(self):
        b = GraphBuilder(4)
        b.add_clique([0, 1, 2, 3])
        assert b.build().num_edges == 6

    def test_add_path(self):
        b = GraphBuilder(4)
        b.add_path([0, 1, 2, 3])
        assert list(b.build().edges()) == [(0, 1), (1, 2), (2, 3)]

    def test_rejects_unknown_vertex(self):
        b = GraphBuilder(1)
        with pytest.raises(ValueError, match="has not been added"):
            b.add_edge(0, 1)

    def test_rejects_self_loop(self):
        b = GraphBuilder(2)
        with pytest.raises(ValueError, match="self-loop"):
            b.add_edge(1, 1)

    def test_rejects_negative_count(self):
        b = GraphBuilder()
        with pytest.raises(ValueError):
            b.add_vertices(-1)

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            GraphBuilder(-2)
