"""Unit tests for graph serialisation."""

import io

import pytest

from repro.graphs.graph import Graph
from repro.graphs.io import (
    edge_list_string,
    read_edge_list,
    to_dot,
    write_edge_list,
)
from repro.graphs.structured import path_graph


class TestEdgeList:
    def test_round_trip_stream(self, random50):
        buffer = io.StringIO()
        write_edge_list(random50, buffer)
        buffer.seek(0)
        assert read_edge_list(buffer) == random50

    def test_round_trip_file(self, tmp_path, random50):
        path = tmp_path / "graph.txt"
        write_edge_list(random50, path)
        assert read_edge_list(path) == random50

    def test_isolated_vertices_survive(self):
        g = Graph(5, [(0, 1)])
        assert read_edge_list(io.StringIO(edge_list_string(g))) == g

    def test_comments_and_blank_lines_ignored(self):
        text = "# a comment\n\n3 1\n# another\n0 2\n"
        g = read_edge_list(io.StringIO(text))
        assert g == Graph(3, [(0, 2)])

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            read_edge_list(io.StringIO(""))

    def test_malformed_edge_rejected(self):
        with pytest.raises(ValueError, match="malformed edge"):
            read_edge_list(io.StringIO("2 1\n0 1 9\n"))

    def test_malformed_header_rejected(self):
        with pytest.raises(ValueError, match="malformed header"):
            read_edge_list(io.StringIO("3\n"))

    def test_edge_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="declares"):
            read_edge_list(io.StringIO("3 2\n0 1\n"))

    def test_format(self):
        assert edge_list_string(path_graph(3)) == "3 2\n0 1\n1 2\n"


class TestDot:
    def test_contains_all_edges(self, c5):
        dot = to_dot(c5)
        for u, v in c5.edges():
            assert f"{u} -- {v};" in dot

    def test_highlighting(self):
        g = path_graph(3)
        dot = to_dot(g, highlighted=[1])
        assert "1 [style=filled" in dot
        assert "0 [style=filled" not in dot

    def test_deterministic(self, random50):
        assert to_dot(random50) == to_dot(random50)

    def test_custom_name(self):
        assert to_dot(Graph(1), name="MyGraph").startswith("graph MyGraph {")


class TestNetworkxBridge:
    def test_round_trip(self, random50):
        networkx = pytest.importorskip("networkx")
        from repro.graphs.io import from_networkx, to_networkx

        nx_graph = to_networkx(random50)
        assert from_networkx(nx_graph) == random50

    def test_relabelling(self):
        networkx = pytest.importorskip("networkx")
        from repro.graphs.io import from_networkx

        nx_graph = networkx.Graph()
        nx_graph.add_edge("b", "a")
        nx_graph.add_node("c")
        g = from_networkx(nx_graph)
        assert g.num_vertices == 3
        assert g.has_edge(0, 1)
        assert g.degree(2) == 0
