"""Tests for graph metrics."""

from random import Random

import pytest

from repro.graphs.graph import Graph
from repro.graphs.metrics import (
    average_clustering,
    bfs_distances,
    degree_histogram,
    diameter,
    eccentricity,
    local_clustering,
    mean_degree,
    workload_summary,
)
from repro.graphs.random_graphs import gnp_random_graph
from repro.graphs.structured import (
    complete_graph,
    cycle_graph,
    empty_graph,
    grid_graph,
    hypercube_graph,
    path_graph,
    star_graph,
    torus_grid_graph,
)


class TestDegreeStats:
    def test_histogram(self):
        assert degree_histogram(star_graph(4)) == [0, 4, 0, 0, 1]

    def test_histogram_regular(self):
        assert degree_histogram(cycle_graph(5)) == [0, 0, 5]

    def test_mean_degree(self):
        assert mean_degree(complete_graph(5)) == 4.0
        assert mean_degree(empty_graph(0)) == 0.0
        assert mean_degree(path_graph(3)) == pytest.approx(4 / 3)


class TestClustering:
    def test_clique_is_fully_clustered(self):
        assert average_clustering(complete_graph(6)) == 1.0

    def test_tree_has_zero_clustering(self):
        assert average_clustering(star_graph(6)) == 0.0
        assert average_clustering(path_graph(6)) == 0.0

    def test_torus_no_triangles(self):
        assert average_clustering(torus_grid_graph(4, 4)) == 0.0

    def test_local_values(self):
        # Triangle plus pendant: vertex 0 in triangle with pendant 3.
        g = Graph(4, [(0, 1), (1, 2), (0, 2), (0, 3)])
        assert local_clustering(g, 1) == 1.0
        assert local_clustering(g, 0) == pytest.approx(1 / 3)
        assert local_clustering(g, 3) == 0.0

    def test_empty_graph(self):
        assert average_clustering(empty_graph(0)) == 0.0


class TestDistances:
    def test_bfs_path(self):
        assert bfs_distances(path_graph(4), 0) == [0, 1, 2, 3]

    def test_bfs_unreachable(self):
        g = Graph(3, [(0, 1)])
        assert bfs_distances(g, 0) == [0, 1, None]

    def test_eccentricity(self):
        assert eccentricity(path_graph(5), 0) == 4
        assert eccentricity(path_graph(5), 2) == 2

    def test_eccentricity_disconnected(self):
        g = Graph(3, [(0, 1)])
        assert eccentricity(g, 0) is None

    @pytest.mark.parametrize(
        "graph,expected",
        [
            (path_graph(5), 4),
            (cycle_graph(8), 4),
            (complete_graph(6), 1),
            (hypercube_graph(4), 4),
            (grid_graph(3, 4), 5),
        ],
    )
    def test_diameter_known(self, graph, expected):
        assert diameter(graph) == expected

    def test_diameter_disconnected(self):
        assert diameter(Graph(3, [(0, 1)])) is None
        assert diameter(empty_graph(0)) is None

    def test_diameter_single_vertex(self):
        assert diameter(Graph(1)) == 0


class TestWorkloadSummary:
    def test_fields(self):
        graph = gnp_random_graph(20, 0.4, Random(1))
        summary = workload_summary(graph)
        assert summary["vertices"] == 20.0
        assert summary["edges"] == float(graph.num_edges)
        assert 0.0 <= summary["density"] <= 1.0
        assert summary["max_degree"] >= summary["mean_degree"]
        assert summary["components"] >= 1.0
