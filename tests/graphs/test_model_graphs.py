"""Tests for the network-model generators (Barabási–Albert, Watts–Strogatz)."""

from random import Random

import pytest

from repro.graphs.metrics import average_clustering, degree_histogram
from repro.graphs.random_graphs import (
    barabasi_albert_graph,
    watts_strogatz_graph,
)


class TestBarabasiAlbert:
    def test_counts(self):
        g = barabasi_albert_graph(50, 3, Random(1))
        assert g.num_vertices == 50
        # Seed star has 3 edges; each of the 46 later vertices adds 3.
        assert g.num_edges == 3 + 46 * 3

    def test_connected(self):
        g = barabasi_albert_graph(60, 2, Random(2))
        assert g.is_connected()

    def test_heavy_tail(self):
        g = barabasi_albert_graph(300, 2, Random(3))
        histogram = degree_histogram(g)
        # Hubs exist: some vertex has degree far above the attachment count.
        assert g.max_degree() > 12
        # But most vertices have small degree.
        small = sum(histogram[: 6])
        assert small > 0.6 * g.num_vertices

    def test_determinism(self):
        a = barabasi_albert_graph(40, 2, Random(4))
        b = barabasi_albert_graph(40, 2, Random(4))
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            barabasi_albert_graph(5, 0, Random(1))
        with pytest.raises(ValueError):
            barabasi_albert_graph(2, 3, Random(1))

    def test_mis_algorithms_work(self):
        from repro.algorithms.feedback import FeedbackMIS

        g = barabasi_albert_graph(80, 3, Random(5))
        FeedbackMIS().run(g, Random(6)).verify()


class TestWattsStrogatz:
    def test_zero_rewiring_is_ring_lattice(self):
        g = watts_strogatz_graph(20, 4, 0.0, Random(1))
        assert g.num_edges == 40
        assert all(g.degree(v) == 4 for v in g.vertices())
        assert g.has_edge(0, 1)
        assert g.has_edge(0, 2)

    def test_edge_count_preserved_under_rewiring(self):
        base = watts_strogatz_graph(30, 4, 0.0, Random(2))
        rewired = watts_strogatz_graph(30, 4, 0.3, Random(2))
        assert rewired.num_edges == base.num_edges

    def test_rewiring_lowers_clustering(self):
        lattice = watts_strogatz_graph(100, 6, 0.0, Random(3))
        random_ish = watts_strogatz_graph(100, 6, 0.9, Random(3))
        assert average_clustering(random_ish) < average_clustering(lattice)

    def test_determinism(self):
        a = watts_strogatz_graph(25, 4, 0.2, Random(4))
        b = watts_strogatz_graph(25, 4, 0.2, Random(4))
        assert a == b

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n": 10, "nearest": 3, "rewire_probability": 0.1},
            {"n": 10, "nearest": 0, "rewire_probability": 0.1},
            {"n": 4, "nearest": 4, "rewire_probability": 0.1},
            {"n": 10, "nearest": 4, "rewire_probability": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            watts_strogatz_graph(rng=Random(1), **kwargs)

    def test_mis_algorithms_work(self):
        from repro.algorithms.feedback import FeedbackMIS

        g = watts_strogatz_graph(60, 6, 0.2, Random(5))
        FeedbackMIS().run(g, Random(6)).verify()
