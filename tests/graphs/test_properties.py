"""Property-based tests (hypothesis) for the graph substrate."""

from random import Random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.graph import Graph
from repro.graphs.random_graphs import gnp_random_graph, random_tree
from repro.graphs.validation import (
    is_independent_set,
    is_maximal_independent_set,
    uncovered_vertices,
)
from repro.algorithms.greedy import greedy_mis


@st.composite
def graphs(draw, max_vertices: int = 24) -> Graph:
    """Arbitrary small graphs via seeded G(n, p)."""
    n = draw(st.integers(min_value=0, max_value=max_vertices))
    p = draw(st.floats(min_value=0.0, max_value=1.0))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    return gnp_random_graph(n, p, Random(seed))


@given(graphs())
def test_handshake_lemma(graph):
    assert sum(graph.degrees()) == 2 * graph.num_edges


@given(graphs())
def test_edges_are_canonical_and_unique(graph):
    edges = list(graph.edges())
    assert all(u < v for u, v in edges)
    assert len(edges) == len(set(edges)) == graph.num_edges


@given(graphs())
def test_neighbor_relation_symmetric(graph):
    for v in graph.vertices():
        for w in graph.neighbors(v):
            assert v in graph.neighbor_set(w)


@given(graphs())
def test_complement_degree_identity(graph):
    complement = graph.complement()
    n = graph.num_vertices
    for v in graph.vertices():
        assert graph.degree(v) + complement.degree(v) == n - 1


@given(graphs())
def test_components_partition_vertices(graph):
    components = graph.connected_components()
    seen = sorted(v for component in components for v in component)
    assert seen == list(graph.vertices())


@given(graphs())
def test_greedy_mis_is_always_mis(graph):
    mis = greedy_mis(graph)
    assert is_maximal_independent_set(graph, mis)


@given(graphs(), st.integers(min_value=0, max_value=2**31 - 1))
def test_random_order_greedy_is_mis(graph, seed):
    order = list(graph.vertices())
    Random(seed).shuffle(order)
    mis = greedy_mis(graph, order)
    assert is_maximal_independent_set(graph, mis)


@given(graphs())
def test_uncovered_of_empty_set_is_everything(graph):
    assert uncovered_vertices(graph, []) == list(graph.vertices())


@given(graphs())
def test_independent_subsets_of_mis(graph):
    mis = greedy_mis(graph)
    # Every subset of an independent set is independent.
    subset = {v for v in mis if v % 2 == 0}
    assert is_independent_set(graph, subset)


@given(
    st.integers(min_value=1, max_value=60),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_random_tree_is_acyclic_and_connected(n, seed):
    tree = random_tree(n, Random(seed))
    assert tree.num_edges == n - 1
    assert tree.is_connected()


@given(graphs(max_vertices=12))
@settings(max_examples=30)
def test_adjacency_matrix_matches_has_edge(graph):
    matrix = graph.adjacency_matrix()
    for u in graph.vertices():
        for v in graph.vertices():
            if u != v:
                assert matrix[u, v] == graph.has_edge(u, v)
