"""Unit tests for the random graph generators."""

import math
from random import Random

import pytest

from repro.graphs.random_graphs import (
    gnm_random_graph,
    gnp_random_graph,
    planted_independent_set_graph,
    random_bipartite_graph,
    random_geometric_graph,
    random_tree,
)
from repro.graphs.validation import is_independent_set


class TestGnp:
    def test_zero_probability(self):
        g = gnp_random_graph(20, 0.0, Random(1))
        assert g.num_edges == 0

    def test_unit_probability_is_complete(self):
        g = gnp_random_graph(10, 1.0, Random(1))
        assert g.num_edges == 45

    def test_determinism(self):
        a = gnp_random_graph(30, 0.4, Random(7))
        b = gnp_random_graph(30, 0.4, Random(7))
        assert a == b

    def test_different_seeds_differ(self):
        a = gnp_random_graph(30, 0.5, Random(1))
        b = gnp_random_graph(30, 0.5, Random(2))
        assert a != b

    def test_edge_count_near_expectation(self):
        n, p = 200, 0.5
        g = gnp_random_graph(n, p, Random(3))
        expected = p * n * (n - 1) / 2
        # 5 sigma tolerance: sigma^2 = C(n,2) p (1-p).
        sigma = math.sqrt(n * (n - 1) / 2 * p * (1 - p))
        assert abs(g.num_edges - expected) < 5 * sigma

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            gnp_random_graph(5, 1.5, Random(1))
        with pytest.raises(ValueError):
            gnp_random_graph(5, -0.1, Random(1))

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            gnp_random_graph(-1, 0.5, Random(1))

    def test_small_graphs(self):
        assert gnp_random_graph(0, 0.5, Random(1)).num_vertices == 0
        assert gnp_random_graph(1, 0.5, Random(1)).num_edges == 0

    def test_sparse_case_exercises_skipping(self):
        g = gnp_random_graph(500, 0.01, Random(5))
        expected = 0.01 * 500 * 499 / 2
        assert 0.5 * expected < g.num_edges < 2.0 * expected


class TestGnm:
    def test_exact_edge_count(self):
        g = gnm_random_graph(20, 37, Random(1))
        assert g.num_edges == 37
        assert g.num_vertices == 20

    def test_extreme_counts(self):
        assert gnm_random_graph(5, 0, Random(1)).num_edges == 0
        assert gnm_random_graph(5, 10, Random(1)).num_edges == 10

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            gnm_random_graph(4, 7, Random(1))

    def test_determinism(self):
        assert gnm_random_graph(15, 30, Random(9)) == gnm_random_graph(
            15, 30, Random(9)
        )


class TestBipartite:
    def test_parts_are_independent(self):
        g = random_bipartite_graph(8, 12, 0.7, Random(2))
        assert is_independent_set(g, range(8))
        assert is_independent_set(g, range(8, 20))

    def test_full_probability(self):
        g = random_bipartite_graph(3, 4, 1.0, Random(1))
        assert g.num_edges == 12

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            random_bipartite_graph(-1, 2, 0.5, Random(1))


class TestGeometric:
    def test_radius_zero_gives_no_edges(self):
        g = random_geometric_graph(30, 0.0, Random(4))
        assert g.num_edges == 0

    def test_radius_sqrt2_gives_complete(self):
        g = random_geometric_graph(15, 1.5, Random(4))
        assert g.num_edges == 15 * 14 // 2

    def test_edges_match_distances(self):
        g, positions = random_geometric_graph(
            40, 0.3, Random(5), return_positions=True
        )
        for u in g.vertices():
            ux, uy = positions[u]
            for v in range(u + 1, g.num_vertices):
                vx, vy = positions[v]
                distance = math.hypot(ux - vx, uy - vy)
                assert g.has_edge(u, v) == (distance <= 0.3)

    def test_determinism(self):
        a = random_geometric_graph(25, 0.25, Random(6))
        b = random_geometric_graph(25, 0.25, Random(6))
        assert a == b

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            random_geometric_graph(5, -0.1, Random(1))


class TestRandomTree:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 20, 100])
    def test_tree_properties(self, n):
        g = random_tree(n, Random(n))
        assert g.num_vertices == n
        assert g.num_edges == max(n - 1, 0)
        assert g.is_connected()

    def test_zero_vertices(self):
        g = random_tree(0, Random(1))
        assert g.num_vertices == 0

    def test_determinism(self):
        assert random_tree(30, Random(2)) == random_tree(30, Random(2))

    def test_distribution_varies(self):
        trees = {random_tree(6, Random(seed)) for seed in range(30)}
        assert len(trees) > 5


class TestPlantedIndependentSet:
    def test_planted_set_is_independent(self):
        g, planted = planted_independent_set_graph(
            30, 10, 0.5, Random(3), return_planted=True
        )
        assert planted == list(range(10))
        assert is_independent_set(g, planted)

    def test_invalid_planted_size(self):
        with pytest.raises(ValueError):
            planted_independent_set_graph(5, 6, 0.5, Random(1))

    def test_without_return_planted(self):
        g = planted_independent_set_graph(10, 4, 0.5, Random(3))
        assert g.num_vertices == 10
