"""Unit tests for the structured graph families."""

import pytest

from repro.graphs.structured import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    grid_graph,
    hex_lattice_graph,
    hypercube_graph,
    path_graph,
    star_graph,
    torus_grid_graph,
)


class TestBasicFamilies:
    def test_empty_graph(self):
        g = empty_graph(7)
        assert g.num_vertices == 7
        assert g.num_edges == 0

    @pytest.mark.parametrize("n,edges", [(0, 0), (1, 0), (2, 1), (5, 10)])
    def test_complete_graph(self, n, edges):
        g = complete_graph(n)
        assert g.num_edges == edges
        if n > 1:
            assert g.min_degree() == g.max_degree() == n - 1

    @pytest.mark.parametrize("n", [0, 1, 2, 7])
    def test_path_graph(self, n):
        g = path_graph(n)
        assert g.num_edges == max(n - 1, 0)
        if n >= 2:
            assert g.degree(0) == 1
            assert g.degree(n - 1) == 1

    def test_cycle_graph(self):
        g = cycle_graph(6)
        assert g.num_edges == 6
        assert all(g.degree(v) == 2 for v in g.vertices())
        assert g.has_edge(5, 0)

    def test_cycle_of_two_rejected(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_trivial_cycles(self):
        assert cycle_graph(0).num_edges == 0
        assert cycle_graph(1).num_edges == 0

    def test_star_graph(self):
        g = star_graph(6)
        assert g.num_vertices == 7
        assert g.degree(0) == 6
        assert all(g.degree(v) == 1 for v in range(1, 7))

    def test_complete_bipartite(self):
        g = complete_bipartite_graph(3, 4)
        assert g.num_edges == 12
        assert g.degree(0) == 4
        assert g.degree(3) == 3


class TestGrids:
    def test_grid_counts(self):
        g = grid_graph(3, 4)
        assert g.num_vertices == 12
        # edges: 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8
        assert g.num_edges == 17

    def test_grid_corner_degrees(self):
        g = grid_graph(3, 3)
        assert g.degree(0) == 2          # corner
        assert g.degree(1) == 3          # edge
        assert g.degree(4) == 4          # centre

    def test_degenerate_grids(self):
        assert grid_graph(0, 5).num_vertices == 0
        assert grid_graph(1, 5).num_edges == 4

    def test_torus_is_regular(self):
        g = torus_grid_graph(4, 5)
        assert g.num_vertices == 20
        assert all(g.degree(v) == 4 for v in g.vertices())
        assert g.num_edges == 40

    def test_torus_small_dims_rejected(self):
        with pytest.raises(ValueError):
            torus_grid_graph(2, 5)

    def test_torus_empty(self):
        assert torus_grid_graph(0, 0).num_vertices == 0


class TestHypercube:
    @pytest.mark.parametrize("d", [0, 1, 2, 3, 4])
    def test_hypercube_regular(self, d):
        g = hypercube_graph(d)
        assert g.num_vertices == 2 ** d
        assert g.num_edges == d * 2 ** (d - 1) if d > 0 else g.num_edges == 0
        if d > 0:
            assert all(g.degree(v) == d for v in g.vertices())

    def test_hypercube_adjacency_is_bitflip(self):
        g = hypercube_graph(3)
        for u, v in g.edges():
            assert bin(u ^ v).count("1") == 1

    def test_negative_dimension_rejected(self):
        with pytest.raises(ValueError):
            hypercube_graph(-1)


class TestHexLattice:
    def test_interior_cell_has_six_neighbors(self):
        g = hex_lattice_graph(5, 5)
        interior = 2 * 5 + 2  # row 2, col 2
        assert g.degree(interior) == 6

    def test_positions_returned(self):
        g, positions = hex_lattice_graph(3, 4, return_positions=True)
        assert len(positions) == g.num_vertices == 12
        # Odd rows are offset by half a cell.
        assert positions[4][0] == pytest.approx(0.5)
        assert positions[0][0] == pytest.approx(0.0)

    def test_degenerate(self):
        assert hex_lattice_graph(0, 3).num_vertices == 0
        assert hex_lattice_graph(1, 4).num_edges == 3

    def test_single_column(self):
        g = hex_lattice_graph(4, 1)
        assert g.num_vertices == 4
        assert g.is_connected()
