"""Unit tests for independence/maximality predicates."""

import pytest

from repro.graphs.graph import Graph
from repro.graphs.structured import complete_graph, path_graph, star_graph
from repro.graphs.validation import (
    MISValidationError,
    independent_set_violations,
    is_dominating_for_uncovered,
    is_independent_set,
    is_maximal_independent_set,
    uncovered_vertices,
    verify_mis,
)


class TestIndependence:
    def test_empty_set_is_independent(self, p4):
        assert is_independent_set(p4, [])

    def test_independent_set(self, p4):
        assert is_independent_set(p4, [0, 2])

    def test_dependent_set(self, p4):
        assert not is_independent_set(p4, [0, 1])

    def test_violations_reported_canonically(self):
        g = complete_graph(3)
        assert independent_set_violations(g, [0, 1, 2]) == [
            (0, 1),
            (0, 2),
            (1, 2),
        ]

    def test_unknown_vertex_rejected(self, p4):
        with pytest.raises(ValueError, match="not a vertex"):
            is_independent_set(p4, [99])


class TestMaximality:
    def test_uncovered_vertices(self, p4):
        assert uncovered_vertices(p4, [0]) == [2, 3]

    def test_fully_covered(self, p4):
        assert uncovered_vertices(p4, [0, 2]) == []
        assert is_dominating_for_uncovered(p4, [0, 2])

    def test_mis_detection(self, p4):
        assert is_maximal_independent_set(p4, [0, 2])
        assert is_maximal_independent_set(p4, [1, 3])
        assert is_maximal_independent_set(p4, [0, 3])
        assert not is_maximal_independent_set(p4, [0])       # not maximal
        assert not is_maximal_independent_set(p4, [0, 1, 3])  # not independent

    def test_star_hub_alone_is_mis(self, star10):
        assert is_maximal_independent_set(star10, [0])

    def test_star_all_leaves_is_mis(self, star10):
        assert is_maximal_independent_set(star10, range(1, 11))

    def test_empty_graph_empty_mis(self):
        assert is_maximal_independent_set(Graph(0), [])

    def test_isolated_vertices_must_be_included(self):
        g = Graph(3, [(0, 1)])
        assert not is_maximal_independent_set(g, [0])
        assert is_maximal_independent_set(g, [0, 2])


class TestVerifyMIS:
    def test_accepts_valid(self, c5):
        assert verify_mis(c5, [0, 2]) == {0, 2}

    def test_rejects_dependent(self, c5):
        with pytest.raises(MISValidationError, match="not independent"):
            verify_mis(c5, [0, 1])

    def test_rejects_non_maximal(self, c5):
        with pytest.raises(MISValidationError, match="not maximal"):
            verify_mis(c5, [0])

    def test_error_names_the_violation(self):
        g = path_graph(3)
        with pytest.raises(MISValidationError, match=r"edge \(0, 1\)"):
            verify_mis(g, [0, 1])
        with pytest.raises(MISValidationError, match="vertex 2"):
            verify_mis(g, [0])

    def test_error_is_assertion_subclass(self):
        assert issubclass(MISValidationError, AssertionError)

    def test_complete_graph_singletons(self):
        g = complete_graph(5)
        for v in range(5):
            assert verify_mis(g, [v]) == {v}
        with pytest.raises(MISValidationError):
            verify_mis(g, [0, 1])
