"""Workload characterisation cross-checks.

Independent identities between the metrics module and the generators:
known closed forms for structured families, concentration for random ones.
"""

from random import Random

import pytest

from repro.graphs.metrics import (
    average_clustering,
    diameter,
    mean_degree,
    workload_summary,
)
from repro.graphs.random_graphs import gnp_random_graph
from repro.graphs.structured import (
    complete_graph,
    cycle_graph,
    grid_graph,
    hex_lattice_graph,
    torus_grid_graph,
)


class TestClosedForms:
    def test_complete_graph_summary(self):
        summary = workload_summary(complete_graph(10))
        assert summary["density"] == 1.0
        assert summary["clustering"] == 1.0
        assert summary["mean_degree"] == 9.0
        assert summary["components"] == 1.0

    def test_cycle_summary(self):
        summary = workload_summary(cycle_graph(12))
        assert summary["mean_degree"] == 2.0
        assert summary["clustering"] == 0.0
        assert diameter(cycle_graph(12)) == 6

    def test_torus_mean_degree_exact(self):
        assert mean_degree(torus_grid_graph(5, 5)) == 4.0

    def test_grid_diameter_is_manhattan(self):
        assert diameter(grid_graph(4, 7)) == 3 + 6

    def test_hex_lattice_has_triangles(self):
        assert average_clustering(hex_lattice_graph(5, 5)) > 0.2


class TestConcentration:
    def test_gnp_density_concentrates(self):
        graph = gnp_random_graph(300, 0.5, Random(1))
        summary = workload_summary(graph)
        assert summary["density"] == pytest.approx(0.5, abs=0.02)

    def test_gnp_half_clustering_near_half(self):
        # In G(n, p) the expected clustering coefficient is p.
        graph = gnp_random_graph(200, 0.5, Random(2))
        assert average_clustering(graph) == pytest.approx(0.5, abs=0.03)

    def test_gnp_diameter_two(self):
        # Dense G(n, 1/2) has diameter 2 w.h.p.
        graph = gnp_random_graph(150, 0.5, Random(3))
        assert diameter(graph) == 2
