"""Conformance tests: the sharded orchestrator vs. the sequential runners.

The acceptance contract of the sweep subsystem is that sharding is purely
an execution strategy: for the same :class:`SweepSpec`, the orchestrator —
at any job count, shard width or cache state — returns exactly the
``TrialOutcome`` rows the sequential :func:`run_trials` /
:func:`run_fleet_trials` calls produce, and a repeated sweep is served
entirely from the store (zero shards executed).
"""

import pytest

from repro.algorithms.feedback import FeedbackMIS
from repro.beeping.faults import FaultModel
from repro.engine.rules import FeedbackRule, SweepRule
from repro.experiments.runner import run_fleet_trials, run_trials
from repro.graphs.random_graphs import gnp_random_graph
from repro.sweep.orchestrator import execute_shard, run_sweep
from repro.sweep.spec import CellSpec, ShardSpec, SweepSpec
from repro.sweep.store import ResultStore

FLEET_CELL = CellSpec(
    algorithm="feedback",
    engine="fleet",
    family="gnp",
    n=30,
    edge_probability=0.4,
    trials=10,
    graphs=3,
    master_seed=77,
)
REFERENCE_CELL = CellSpec(
    algorithm="feedback",
    engine="reference",
    family="gnp",
    n=16,
    edge_probability=0.3,
    trials=6,
    master_seed=9,
)


def fleet_oracle(cell):
    return run_fleet_trials(
        {"feedback": FeedbackRule, "afek-sweep": SweepRule}[cell.algorithm],
        lambda rng: gnp_random_graph(cell.n, cell.edge_probability, rng),
        cell.trials,
        cell.master_seed,
        graphs=cell.graphs,
        validate=cell.validate,
        faults=cell.fault_model(),
        rng_mode=cell.rng_mode,
    )


def reference_oracle(cell):
    return run_trials(
        FeedbackMIS,
        lambda rng: gnp_random_graph(cell.n, cell.edge_probability, rng),
        cell.trials,
        cell.master_seed,
        faults=cell.fault_model(),
        validate=cell.validate,
    )


class TestBitIdenticalToSequential:
    """ISSUE acceptance: orchestrator(jobs>=2) == run_trials/run_fleet_trials."""

    def test_fleet_cell_matches_run_fleet_trials(self, tmp_path):
        spec = SweepSpec((FLEET_CELL,), shard_trials=4)  # 3 shards
        result = run_sweep(spec, store=ResultStore(tmp_path), jobs=2)
        assert result.rows(FLEET_CELL) == fleet_oracle(FLEET_CELL)
        assert result.report.shards_executed == 3

    def test_reference_cell_matches_run_trials(self, tmp_path):
        spec = SweepSpec((REFERENCE_CELL,), shard_trials=2)  # 3 shards
        result = run_sweep(spec, store=ResultStore(tmp_path), jobs=2)
        assert result.rows(REFERENCE_CELL) == reference_oracle(REFERENCE_CELL)

    def test_results_independent_of_jobs(self):
        spec = SweepSpec((FLEET_CELL, REFERENCE_CELL), shard_trials=3)
        sequential = run_sweep(spec, jobs=1)
        parallel = run_sweep(spec, jobs=2)
        assert sequential.outcomes == parallel.outcomes

    def test_results_independent_of_shard_width(self):
        wide = run_sweep(SweepSpec((FLEET_CELL,), shard_trials=100))
        narrow = run_sweep(SweepSpec((FLEET_CELL,), shard_trials=1))
        assert wide.rows(FLEET_CELL) == narrow.rows(FLEET_CELL)

    def test_single_shard_executor_is_the_unit(self):
        """execute_shard on the full window IS the sequential run."""
        whole = ShardSpec(FLEET_CELL, 0, FLEET_CELL.trials)
        assert execute_shard(whole) == fleet_oracle(FLEET_CELL)

    def test_faulted_reference_cell_matches_run_trials(self):
        cell = CellSpec(
            algorithm="feedback",
            engine="reference",
            family="gnp",
            n=14,
            edge_probability=0.3,
            trials=4,
            master_seed=13,
            spurious_beep=0.2,
        )
        result = run_sweep(SweepSpec((cell,), shard_trials=2), jobs=2)
        expected = run_trials(
            FeedbackMIS,
            lambda rng: gnp_random_graph(14, 0.3, rng),
            4,
            13,
            faults=FaultModel(spurious_beep_probability=0.2),
        )
        assert result.rows(cell) == expected

    @pytest.mark.parametrize("rng_mode", ("stream", "counter"))
    def test_fleet_cell_matches_oracle_in_both_rng_modes(self, rng_mode):
        """The orchestrator forwards rng_mode: a stream-mode cell must
        reproduce the stream-mode sequential runner, not the counter
        default (and vice versa)."""
        cell = CellSpec(**{**FLEET_CELL.to_dict(), "rng_mode": rng_mode})
        result = run_sweep(SweepSpec((cell,), shard_trials=4), jobs=2)
        assert result.rows(cell) == fleet_oracle(cell)
        if rng_mode == "stream":
            assert result.rows(cell) != fleet_oracle(FLEET_CELL)

    def test_faulted_fleet_cell_matches_run_fleet_trials(self, tmp_path):
        """ISSUE 3 acceptance: fault-injected fleet cells shard exactly."""
        cell = CellSpec(
            algorithm="feedback",
            engine="fleet",
            family="gnp",
            n=24,
            edge_probability=0.3,
            trials=9,
            graphs=2,
            master_seed=41,
            beep_loss=0.2,
            spurious_beep=0.1,
            crashes=((1, 2), (3, 7)),
        )
        result = run_sweep(
            SweepSpec((cell,), shard_trials=4), store=ResultStore(tmp_path),
            jobs=2,
        )
        assert result.rows(cell) == fleet_oracle(cell)


class TestStoreResume:
    """ISSUE acceptance: a repeated sweep executes zero shards."""

    def test_second_invocation_is_fully_cached(self, tmp_path):
        spec = SweepSpec((FLEET_CELL, REFERENCE_CELL), shard_trials=4)
        store = ResultStore(tmp_path)
        cold = run_sweep(spec, store=store, jobs=2)
        assert cold.report.shards_executed == cold.report.shards_total
        warm = run_sweep(spec, store=store, jobs=2)
        assert warm.report.shards_executed == 0
        assert warm.report.shards_cached == warm.report.shards_total
        assert warm.outcomes == cold.outcomes
        # Verified by the manifests: every shard of the spec is on disk.
        for shard in spec.shards():
            manifest = store.manifest(shard)
            assert manifest is not None
            assert manifest.rows == shard.trials

    def test_robustness_grid_is_fully_cached_on_rerun(self, tmp_path):
        """ISSUE 3 acceptance: a warm fault-grid sweep re-runs 0 shards."""
        from repro.experiments.robustness import robustness_grid

        kwargs = dict(
            n=20,
            trials=6,
            loss_probabilities=(0.0, 0.2),
            spurious_probabilities=(0.0, 0.1),
            crashes=((1, 3),),
            master_seed=5,
            shard_trials=3,
            cache_dir=tmp_path,
        )
        cold_result, cold_report = robustness_grid(**kwargs)
        assert cold_report.shards_executed == cold_report.shards_total > 0
        warm_result, warm_report = robustness_grid(**kwargs)
        assert warm_report.shards_executed == 0
        assert warm_report.shards_cached == warm_report.shards_total
        assert warm_result.points == cold_result.points

    def test_partial_cache_executes_only_missing_shards(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = SweepSpec((FLEET_CELL,), shard_trials=4)
        first_shard = spec.shards()[0]
        store.put(first_shard, execute_shard(first_shard))
        result = run_sweep(spec, store=store, jobs=2)
        assert result.report.shards_cached == 1
        assert result.report.shards_executed == 2
        assert result.rows(FLEET_CELL) == fleet_oracle(FLEET_CELL)

    def test_reference_sweep_extension_reuses_stored_shards(self, tmp_path):
        """Growing a reference cell's trial count only runs the new tail."""
        store = ResultStore(tmp_path)
        small = SweepSpec((REFERENCE_CELL,), shard_trials=2)
        run_sweep(small, store=store)
        grown = CellSpec(
            **{**REFERENCE_CELL.to_dict(), "trials": REFERENCE_CELL.trials + 2}
        )
        result = run_sweep(SweepSpec((grown,), shard_trials=2), store=store)
        assert result.report.shards_cached == 3
        assert result.report.shards_executed == 1
        assert result.rows(grown) == reference_oracle(grown)

    def test_store_accepts_a_plain_path(self, tmp_path):
        spec = SweepSpec((REFERENCE_CELL,), shard_trials=3)
        run_sweep(spec, store=tmp_path)
        warm = run_sweep(spec, store=str(tmp_path))
        assert warm.report.shards_executed == 0

    def test_duplicate_cells_execute_once(self, tmp_path):
        spec = SweepSpec((FLEET_CELL, FLEET_CELL), shard_trials=100)
        result = run_sweep(spec, store=tmp_path)
        assert result.report.shards_total == 2
        assert result.report.shards_executed == 1
        assert result.rows(FLEET_CELL) == fleet_oracle(FLEET_CELL)


class TestBackendTransparency:
    """The backend field is pure execution strategy: identical rows,
    shared cache entries (it is excluded from the shard hash)."""

    BITBOARD_CELL = CellSpec(**{**FLEET_CELL.to_dict(), "backend": "bitboard"})

    def test_fresh_bitboard_sweep_matches_dense_rows(self):
        dense = run_sweep(SweepSpec((FLEET_CELL,), shard_trials=4))
        bitboard = run_sweep(SweepSpec((self.BITBOARD_CELL,), shard_trials=4))
        assert bitboard.report.shards_executed == bitboard.report.shards_total
        assert bitboard.rows(self.BITBOARD_CELL) == dense.rows(FLEET_CELL)
        assert bitboard.rows(self.BITBOARD_CELL) == fleet_oracle(FLEET_CELL)

    def test_warm_dense_cache_serves_bitboard_rerun(self, tmp_path):
        """Rerunning a dense-cached sweep on the bitboard backend is a
        100% cache hit with byte-identical rows — the spec-key stability
        half of the golden-replay satellite."""
        store = ResultStore(tmp_path)
        cold = run_sweep(SweepSpec((FLEET_CELL,), shard_trials=4), store=store)
        assert cold.report.shards_executed == cold.report.shards_total
        warm = run_sweep(
            SweepSpec((self.BITBOARD_CELL,), shard_trials=4), store=store
        )
        assert warm.report.shards_executed == 0
        assert warm.report.shards_cached == warm.report.shards_total
        assert warm.rows(self.BITBOARD_CELL) == cold.rows(FLEET_CELL)

    def test_warm_bitboard_cache_serves_dense_rerun(self, tmp_path):
        """And the converse: rows computed by the bitboard kernels are
        valid cache entries for every other backend."""
        store = ResultStore(tmp_path)
        cold = run_sweep(
            SweepSpec((self.BITBOARD_CELL,), shard_trials=4), store=store
        )
        warm = run_sweep(SweepSpec((FLEET_CELL,), shard_trials=4), store=store)
        assert warm.report.shards_executed == 0
        assert warm.rows(FLEET_CELL) == cold.rows(self.BITBOARD_CELL)


class TestValidation:
    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            run_sweep(SweepSpec((REFERENCE_CELL,)), jobs=0)


def _inject_failures(lo, fail_attempts):
    """A ``_failure_injector`` that crashes the shard starting at ``lo``
    on its first ``fail_attempts`` attempts (fork-propagated to pool
    workers, so it also exercises the cross-process retry path)."""

    def hook(shard, attempt):
        if shard.lo == lo and attempt < fail_attempts:
            raise RuntimeError(f"injected worker crash (attempt {attempt})")

    return hook


class TestShardFaultTolerance:
    """ISSUE 9 satellite: a crashing shard is retried, then reported —
    it never sinks the sweep, and every successful shard stays stored."""

    SPEC = SweepSpec((FLEET_CELL,), shard_trials=4)  # 3 shards

    def test_flaky_shard_retries_then_succeeds_inline(self, monkeypatch):
        monkeypatch.setattr(
            "repro.sweep.orchestrator._failure_injector",
            _inject_failures(4, fail_attempts=1),
        )
        result = run_sweep(self.SPEC, jobs=1)
        assert result.report.shards_retried == 1
        assert result.report.failed_shards == []
        assert result.report.shards_executed == 3
        assert "retried=1" in result.report.summary()
        assert result.rows(FLEET_CELL) == fleet_oracle(FLEET_CELL)

    def test_flaky_shard_retries_then_succeeds_in_pool(self, monkeypatch):
        monkeypatch.setattr(
            "repro.sweep.orchestrator._failure_injector",
            _inject_failures(4, fail_attempts=2),
        )
        result = run_sweep(self.SPEC, jobs=2)
        assert result.report.shards_retried == 2
        assert result.report.failed_shards == []
        assert result.rows(FLEET_CELL) == fleet_oracle(FLEET_CELL)

    @pytest.mark.parametrize("jobs", (1, 2))
    def test_permanent_failure_finishes_remaining_shards(
        self, monkeypatch, jobs
    ):
        from repro.sweep.orchestrator import SHARD_ATTEMPTS

        monkeypatch.setattr(
            "repro.sweep.orchestrator._failure_injector",
            _inject_failures(0, fail_attempts=SHARD_ATTEMPTS),
        )
        spec = SweepSpec((FLEET_CELL, REFERENCE_CELL), shard_trials=4)
        result = run_sweep(spec, jobs=jobs)
        # The reference cell (whose shards start at lo=0 too, but carry a
        # different content hash) shares the lo==0 trigger: scope the
        # check to what actually failed.
        failed = result.report.failed_shards
        assert failed, "permanent failure must be reported"
        for shard in failed:
            assert shard.attempts == SHARD_ATTEMPTS
            assert "RuntimeError: injected worker crash" in shard.error
        assert f"failed={len(failed)}" in result.report.summary()
        # Cells hit by the failure are absent with a contextual KeyError…
        assert FLEET_CELL not in result.outcomes
        with pytest.raises(KeyError, match="a shard failed"):
            result.rows(FLEET_CELL)
        # …while untouched shards of the sweep still executed and stored.
        executed_windows = {
            (t.lo, t.hi) for t in result.report.timings if not t.cached
        }
        assert (4, 8) in executed_windows
        assert (8, 10) in executed_windows

    def test_rerun_after_failure_resumes_only_failed_window(
        self, monkeypatch, tmp_path
    ):
        from repro.sweep import orchestrator

        store = ResultStore(tmp_path)
        monkeypatch.setattr(
            orchestrator, "_failure_injector",
            _inject_failures(4, fail_attempts=orchestrator.SHARD_ATTEMPTS),
        )
        cold = run_sweep(self.SPEC, store=store, jobs=1)
        assert len(cold.report.failed_shards) == 1
        assert cold.report.failed_shards[0].lo == 4
        # The crash is fixed (injector removed); the rerun recomputes
        # only the failed window and serves the rest from the store.
        monkeypatch.setattr(orchestrator, "_failure_injector", None)
        warm = run_sweep(self.SPEC, store=store, jobs=1)
        assert warm.report.failed_shards == []
        assert warm.report.shards_cached == 2
        assert warm.report.shards_executed == 1
        assert warm.rows(FLEET_CELL) == fleet_oracle(FLEET_CELL)

    def test_retry_and_failure_telemetry(self, monkeypatch):
        from repro.sweep.orchestrator import SHARD_ATTEMPTS
        from repro.telemetry.probes import Collector, capture

        monkeypatch.setattr(
            "repro.sweep.orchestrator._failure_injector",
            _inject_failures(0, fail_attempts=SHARD_ATTEMPTS),
        )
        events = []
        collector = Collector(sinks=(events.append,))
        with capture(collector):
            run_sweep(self.SPEC, jobs=1)
        assert collector.counters["sweep.shard.retry"] == SHARD_ATTEMPTS - 1
        assert collector.counters["sweep.shard.failed"] == 1
        failures = [
            e for e in events
            if e["event"] == "annotation" and e["name"] == "sweep.shard.failed"
        ]
        assert len(failures) == 1
        attrs = failures[0]["attrs"]
        assert attrs["lo"] == 0 and attrs["hi"] == 4
        assert attrs["error"].startswith("RuntimeError")
        assert len(attrs["content_hash"]) == 64


class TestAggregation:
    def test_cell_point_summarises_rows(self):
        from repro.sweep.aggregate import cell_point, outcome_value

        result = run_sweep(SweepSpec((FLEET_CELL,), shard_trials=4))
        rows = result.rows(FLEET_CELL)
        point = cell_point(FLEET_CELL, rows, "rounds")
        assert point.series == "feedback"
        assert point.x == float(FLEET_CELL.n)
        assert point.trials == FLEET_CELL.trials
        values = [outcome_value(row, "rounds") for row in rows]
        assert point.mean == pytest.approx(sum(values) / len(values))

    def test_outcome_value_rejects_unknown_quantity(self):
        from repro.sweep.aggregate import outcome_value

        result = run_sweep(SweepSpec((REFERENCE_CELL,)))
        with pytest.raises(ValueError, match="quantity"):
            outcome_value(result.rows(REFERENCE_CELL)[0], "latency")


class TestReportTimings:
    """SweepReport keeps the per-shard numbers it used to drop."""

    def test_cold_sweep_records_one_timing_per_shard(self, tmp_path):
        result = run_sweep(
            SweepSpec((FLEET_CELL,), shard_trials=4), store=tmp_path
        )
        report = result.report
        assert report.shards_total == 3
        assert len(report.timings) == 3
        assert all(not t.cached for t in report.timings)
        assert report.cache_hit_rate == 0.0
        assert sum(t.seconds for t in report.timings) == pytest.approx(
            report.seconds_executed
        )
        windows = sorted((t.lo, t.hi) for t in report.timings)
        assert windows == [(0, 4), (4, 8), (8, 10)]
        assert all(len(t.content_hash) == 64 for t in report.timings)

    def test_warm_sweep_timings_are_cached_lookups(self, tmp_path):
        spec = SweepSpec((FLEET_CELL,), shard_trials=4)
        run_sweep(spec, store=tmp_path)
        warm = run_sweep(spec, store=tmp_path).report
        assert warm.shards_executed == 0
        assert warm.cache_hit_rate == 1.0
        assert all(t.cached for t in warm.timings)
        assert warm.slowest_shards() == []

    def test_slowest_shards_rank_executed_work(self):
        from repro.sweep.orchestrator import ShardTiming, SweepReport

        report = SweepReport(shards_total=3)
        fast = ShardTiming("feedback", 30, 0, 4, 0.1, False, "aa")
        slow = ShardTiming("feedback", 30, 4, 8, 0.9, False, "bb")
        hit = ShardTiming("feedback", 30, 8, 10, 5.0, True, "cc")
        report.timings.extend([fast, slow, hit])
        report.shards_executed = 2
        report.shards_cached = 1
        report.seconds_executed = 1.0
        assert report.slowest_shards(1) == [slow]
        summary = report.summary()
        assert "executed=2" in summary
        assert "cached=1" in summary
        assert "hit-rate=33%" in summary
        assert "slowest=feedback[n=30 4:8] 0.900s" in summary

    def test_empty_report_summary(self):
        from repro.sweep.orchestrator import SweepReport

        report = SweepReport()
        assert report.cache_hit_rate is None
        assert "hit-rate=-" in report.summary()
