"""Tests for the persistent pipeline run database."""

import json

import pytest

from repro.sweep.rundb import (
    RUNDB_FORMAT_VERSION,
    RunDB,
    RunRecord,
    fingerprint_hash,
    sweep_spec_hash,
)
from repro.sweep.spec import CellSpec, SweepSpec


def record(run_id="r1", experiment="figure3", spec_hash="a" * 64, **overrides):
    base = dict(
        run_id=run_id,
        experiment=experiment,
        spec_hash=spec_hash,
        trials=3,
        shards_total=6,
        shards_executed=2,
        shards_cached=4,
        elapsed_seconds=0.5,
        drift="PASS",
        csv_sha256="b" * 64,
        created=1700000000.0,
        extra={"note": "x"},
    )
    base.update(overrides)
    return RunRecord(**base)


def cell(**overrides):
    base = dict(
        algorithm="feedback",
        engine="fleet",
        family="gnp",
        n=20,
        edge_probability=0.5,
        trials=4,
        master_seed=7,
    )
    base.update(overrides)
    return CellSpec(**base)


class TestHashes:
    def test_fingerprint_hash_is_canonical(self):
        a = fingerprint_hash({"b": 2, "a": 1})
        b = fingerprint_hash({"a": 1, "b": 2})
        assert a == b
        assert len(a) == 64

    def test_fingerprint_hash_distinguishes_payloads(self):
        assert fingerprint_hash({"a": 1}) != fingerprint_hash({"a": 2})

    def test_sweep_spec_hash_ignores_shard_width(self):
        spec_fine = SweepSpec((cell(),), shard_trials=2)
        spec_coarse = SweepSpec((cell(),), shard_trials=64)
        assert sweep_spec_hash(spec_fine) == sweep_spec_hash(spec_coarse)

    def test_sweep_spec_hash_sees_cell_parameters(self):
        assert sweep_spec_hash(SweepSpec((cell(),), 8)) != sweep_spec_hash(
            SweepSpec((cell(master_seed=8),), 8)
        )


class TestRunRecord:
    def test_round_trip(self):
        original = record()
        assert RunRecord.from_dict(original.to_dict()) == original

    def test_to_dict_stamps_format(self):
        assert record().to_dict()["format"] == RUNDB_FORMAT_VERSION

    def test_cache_hit_rate(self):
        assert record().cache_hit_rate == pytest.approx(4 / 6)
        assert record(shards_executed=0, shards_cached=0).cache_hit_rate is None

    def test_from_dict_tolerates_missing_optionals(self):
        loaded = RunRecord.from_dict(
            {
                "run_id": "r",
                "experiment": "e",
                "spec_hash": "h",
                "trials": 1,
            }
        )
        assert loaded.drift == "MISSING"
        assert loaded.extra == {}


class TestRunDB:
    def test_append_and_read_back(self, tmp_path):
        db = RunDB(tmp_path / "db")
        db.append(record(run_id="r1"))
        db.append(record(run_id="r2", experiment="bio"))
        loaded = db.records()
        assert [r.run_id for r in loaded] == ["r1", "r2"]
        assert loaded[0] == record(run_id="r1")

    def test_reopen_sees_prior_records(self, tmp_path):
        root = tmp_path / "db"
        RunDB(root).append(record(run_id="r1"))
        assert [r.run_id for r in RunDB(root).records()] == ["r1"]

    def test_empty_database_reads_empty(self, tmp_path):
        assert RunDB(tmp_path / "fresh").records() == []

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        db = RunDB(tmp_path / "db")
        db.append(record(run_id="r1"))
        db.append(record(run_id="r2"))
        with open(db.runs_path, "a", encoding="utf-8") as handle:
            handle.write('{"run_id": "torn", "experi')
        assert [r.run_id for r in db.records()] == ["r1", "r2"]

    def test_garbage_line_mid_file_loses_only_itself(self, tmp_path):
        db = RunDB(tmp_path / "db")
        db.append(record(run_id="r1"))
        with open(db.runs_path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
        db.append(record(run_id="r2"))
        assert [r.run_id for r in db.records()] == ["r1", "r2"]

    def test_runs_for_prefix_match(self, tmp_path):
        db = RunDB(tmp_path / "db")
        db.append(record(run_id="r1", spec_hash="a" * 64))
        db.append(record(run_id="r2", spec_hash="b" * 64))
        assert [r.run_id for r in db.runs_for("a" * 12)] == ["r1"]
        assert db.runs_for("f" * 12) == []

    def test_latest_picks_newest_per_experiment(self, tmp_path):
        db = RunDB(tmp_path / "db")
        db.append(record(run_id="r1", experiment="figure3", drift="MISSING"))
        db.append(record(run_id="r2", experiment="figure3", drift="PASS"))
        db.append(record(run_id="r2", experiment="bio"))
        latest = db.latest("figure3")
        assert latest is not None
        assert (latest.run_id, latest.drift) == ("r2", "PASS")
        assert db.latest("nope") is None


class TestIndex:
    def test_index_written_on_append(self, tmp_path):
        db = RunDB(tmp_path / "db")
        db.append(record(run_id="r1"))
        payload = json.loads(db.index_path.read_text(encoding="utf-8"))
        assert payload["format"] == RUNDB_FORMAT_VERSION
        assert payload["records"] == 1
        assert payload["experiments"]["figure3"]["last_drift"] == "PASS"

    def test_corrupt_index_is_rebuilt(self, tmp_path):
        db = RunDB(tmp_path / "db")
        db.append(record(run_id="r1"))
        db.index_path.write_text("{broken", encoding="utf-8")
        payload = db.index()
        assert payload["records"] == 1
        # ... and the on-disk copy healed too.
        assert json.loads(db.index_path.read_text())["records"] == 1

    def test_stale_format_index_is_rebuilt(self, tmp_path):
        db = RunDB(tmp_path / "db")
        db.append(record(run_id="r1"))
        db.index_path.write_text(
            json.dumps({"format": RUNDB_FORMAT_VERSION + 1, "records": 99}),
            encoding="utf-8",
        )
        assert db.index()["records"] == 1

    def test_missing_index_rebuilds_from_records(self, tmp_path):
        db = RunDB(tmp_path / "db")
        db.append(record(run_id="r1"))
        db.index_path.unlink()
        assert db.index()["experiments"]["figure3"]["runs"] == 1
