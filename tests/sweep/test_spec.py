"""Tests for the frozen sweep/shard specs and their content hashes."""

import pytest

from repro.sweep.spec import (
    SPEC_FORMAT_VERSION,
    CellSpec,
    ShardSpec,
    SweepSpec,
    canonical_json,
)


def fleet_cell(**overrides):
    base = dict(
        algorithm="feedback",
        engine="fleet",
        family="gnp",
        n=100,
        edge_probability=0.5,
        trials=64,
        graphs=4,
        master_seed=1303,
    )
    base.update(overrides)
    return CellSpec(**base)


def reference_cell(**overrides):
    base = dict(
        algorithm="feedback",
        engine="reference",
        family="gnp",
        n=30,
        edge_probability=0.3,
        trials=10,
        master_seed=7,
    )
    base.update(overrides)
    return CellSpec(**base)


class TestCellValidation:
    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="engine"):
            fleet_cell(engine="gpu")

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            fleet_cell(backend="simd")

    def test_rejects_unknown_family(self):
        with pytest.raises(ValueError, match="family"):
            fleet_cell(family="torus")

    def test_rejects_non_fleet_rule_on_fleet_engine(self):
        with pytest.raises(ValueError, match="fleet engine supports"):
            fleet_cell(algorithm="greedy")

    def test_rejects_unknown_reference_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            reference_cell(algorithm="bogus")

    def test_fleet_engine_accepts_faults(self):
        cell = fleet_cell(
            beep_loss=0.1, spurious_beep=0.1, crashes=((2, 4),)
        )
        assert not cell.fault_model().is_fault_free

    def test_rejects_bad_fault_probability(self):
        with pytest.raises(ValueError, match="beep_loss_probability"):
            fleet_cell(beep_loss=1.5)
        with pytest.raises(ValueError, match="spurious_beep_probability"):
            reference_cell(spurious_beep=-0.1)

    def test_reference_engine_accepts_faults(self):
        cell = reference_cell(beep_loss=0.05, crashes=((3, 1), (1, 0)))
        model = cell.fault_model()
        assert model.beep_loss_probability == 0.05
        assert not model.is_fault_free
        # Crash pairs are canonicalised to sorted order.
        assert cell.crashes == ((1, 0), (3, 1))

    def test_message_algorithms_are_fleet_rules(self):
        for algorithm in (
            "luby-permutation", "luby-probability", "metivier",
            "local-minimum-id",
        ):
            cell = fleet_cell(algorithm=algorithm)
            assert cell.rng_mode == "counter"

    def test_message_cell_rejects_stream_mode(self):
        with pytest.raises(ValueError, match="counter"):
            fleet_cell(algorithm="luby-permutation", rng_mode="stream")

    def test_message_cell_rejects_faults(self):
        with pytest.raises(ValueError, match="fault"):
            fleet_cell(algorithm="metivier", beep_loss=0.1)
        with pytest.raises(ValueError, match="fault"):
            fleet_cell(algorithm="luby-probability", crashes=((1, 2),))

    def test_message_algorithm_distinguishes_cell_hashes(self):
        """Algorithm is a first-class sweep axis: two cells differing
        only in the (message) algorithm must never share cached rows."""
        a = ShardSpec(fleet_cell(algorithm="luby-permutation"), 0, 8)
        b = ShardSpec(fleet_cell(algorithm="metivier"), 0, 8)
        assert a.content_hash() != b.content_hash()

    def test_rejects_bad_grid(self):
        with pytest.raises(ValueError, match="grid"):
            fleet_cell(family="grid", rows=0, cols=5)

    def test_rejects_bad_gnp(self):
        with pytest.raises(ValueError, match="edge_probability"):
            fleet_cell(edge_probability=1.5)

    def test_rejects_bad_theorem1(self):
        with pytest.raises(ValueError, match="side"):
            fleet_cell(family="theorem1", side=0)
        with pytest.raises(ValueError, match="copies"):
            fleet_cell(family="theorem1", side=4, copies=-1)

    def test_num_vertices(self):
        assert fleet_cell(n=80).num_vertices == 80
        grid = fleet_cell(family="grid", rows=4, cols=6)
        assert grid.num_vertices == 24
        # copies=0 defaults to side: side * side*(side+1)/2 vertices.
        thm = fleet_cell(family="theorem1", side=4)
        assert thm.num_vertices == 4 * 10
        assert fleet_cell(family="theorem1", side=4, copies=2).num_vertices == 20

    def test_graph_factory_matches_family(self):
        from random import Random

        gnp = fleet_cell(n=12, edge_probability=0.5).graph_factory()(Random(1))
        assert gnp.num_vertices == 12
        grid = fleet_cell(family="grid", rows=3, cols=4).graph_factory()(Random(1))
        assert grid.num_vertices == 12
        assert grid.num_edges == 3 * 3 + 2 * 4  # grid edge count
        thm = fleet_cell(family="theorem1", side=3).graph_factory()(Random(1))
        assert thm.num_vertices == 3 * 6

    def test_round_trips_through_dict(self):
        for cell in (
            fleet_cell(),
            fleet_cell(rng_mode="stream"),
            fleet_cell(backend="bitboard"),
            reference_cell(beep_loss=0.1, crashes=((2, 5),)),
            fleet_cell(family="grid", rows=5, cols=5),
            fleet_cell(family="theorem1", side=6, copies=3),
        ):
            assert CellSpec.from_dict(cell.to_dict()) == cell

    def test_from_dict_defaults_missing_rng_mode(self):
        """Pre-v2 manifests have no rng_mode; they deserialise to the
        current default rather than failing."""
        payload = fleet_cell().to_dict()
        del payload["rng_mode"]
        assert CellSpec.from_dict(payload).rng_mode == "counter"


class TestShardHash:
    def test_stable_across_constructions(self):
        a = ShardSpec(fleet_cell(), 0, 32).content_hash()
        b = ShardSpec(fleet_cell(), 0, 32).content_hash()
        assert a == b

    def test_golden_hash_pins_key_format(self):
        """The cache-key format is an on-disk contract: if this changes,
        every stored shard is orphaned, so it must change deliberately
        (with a SPEC_FORMAT_VERSION bump), never by accident."""
        # v2: fleet fingerprints grew rng_mode (ISSUE 4); every v1 entry
        # is deliberately orphaned because fleet defaults moved from the
        # stream to the counter discipline.
        # v3: every fingerprint grew the churn axis (and rows the repair
        # columns), so v2 entries are deliberately orphaned.
        assert SPEC_FORMAT_VERSION == 3
        digest = ShardSpec(fleet_cell(), 0, 32).content_hash()
        assert digest == (
            "1a356a0c4cd42d6c0f9c37a2a34877b45b69b717bfd10b51a662254460b21cc6"
        )

    @pytest.mark.parametrize(
        "override",
        [
            {"algorithm": "afek-sweep"},
            {"n": 101},
            {"edge_probability": 0.4},
            {"master_seed": 1304},
            {"trials": 65},
            {"graphs": 5},
            {"rng_mode": "stream"},
            {"max_rounds": 50_000},
            {"beep_loss": 0.1},
            {"spurious_beep": 0.05},
            {"crashes": ((2, 4),)},
        ],
    )
    def test_fleet_hash_covers_execution_fields(self, override):
        base = ShardSpec(fleet_cell(), 0, 32).content_hash()
        changed = ShardSpec(fleet_cell(**override), 0, 32).content_hash()
        assert base != changed

    def test_validate_not_in_hash(self):
        """validate can only raise, never change a row — toggling it must
        reuse the cache, not split it."""
        checked = ShardSpec(fleet_cell(validate=True), 0, 32).content_hash()
        unchecked = ShardSpec(fleet_cell(validate=False), 0, 32).content_hash()
        assert checked == unchecked

    def test_backend_not_in_hash(self):
        """The neighbour-reduction backend is pure execution strategy —
        all backends compute bit-identical rows (the conformance suite
        enforces it), so a warm cache must serve every backend."""
        base = ShardSpec(fleet_cell(), 0, 32).content_hash()
        for backend in ("dense", "sparse", "bitboard"):
            assert ShardSpec(fleet_cell(backend=backend), 0, 32).content_hash() == base

    def test_window_in_hash(self):
        cell = fleet_cell()
        assert (
            ShardSpec(cell, 0, 32).content_hash()
            != ShardSpec(cell, 32, 64).content_hash()
        )

    def test_theorem1_hash_covers_side_and_copies(self):
        base = fleet_cell(family="theorem1", side=6)
        assert (
            ShardSpec(base, 0, 8).content_hash()
            != ShardSpec(fleet_cell(family="theorem1", side=8), 0, 8)
            .content_hash()
        )
        assert (
            ShardSpec(base, 0, 8).content_hash()
            != ShardSpec(
                fleet_cell(family="theorem1", side=6, copies=2), 0, 8
            ).content_hash()
        )

    def test_theorem1_fields_absent_from_other_family_fingerprints(self):
        """The v3 key format is unchanged for gnp/grid cells: the new
        side/copies fields only enter the fingerprint under theorem1, so
        every pre-existing store entry keeps its hash."""
        assert "side" not in fleet_cell().execution_fingerprint()
        grid = fleet_cell(family="grid", rows=4, cols=4)
        assert "copies" not in grid.execution_fingerprint()
        thm = fleet_cell(family="theorem1", side=5).execution_fingerprint()
        assert (thm["side"], thm["copies"]) == (5, 0)

    def test_reference_hash_ignores_total_trials(self):
        """Reference trial t depends only on (master_seed, t): growing a
        sweep from 10 to 200 trials must reuse every stored shard."""
        small = ShardSpec(reference_cell(trials=10), 0, 5)
        large = ShardSpec(reference_cell(trials=200), 0, 5)
        assert small.content_hash() == large.content_hash()

    def test_reference_hash_ignores_rng_mode(self):
        """The per-node engine has its own random.Random discipline;
        rng_mode cannot change a reference row, so it must not split the
        cache."""
        counter = ShardSpec(reference_cell(rng_mode="counter"), 0, 5)
        stream = ShardSpec(reference_cell(rng_mode="stream"), 0, 5)
        assert counter.content_hash() == stream.content_hash()

    def test_rejects_unknown_rng_mode(self):
        with pytest.raises(ValueError, match="rng_mode"):
            fleet_cell(rng_mode="quantum")

    def test_fleet_hash_depends_on_total_trials(self):
        """Fleet grouping (and so every seed path) depends on (trials,
        graphs) — different totals must not share cache entries."""
        small = ShardSpec(fleet_cell(trials=32), 0, 16)
        large = ShardSpec(fleet_cell(trials=64), 0, 16)
        assert small.content_hash() != large.content_hash()

    def test_rejects_bad_windows(self):
        cell = fleet_cell(trials=10)
        for lo, hi in ((-1, 5), (5, 5), (6, 4), (0, 11)):
            with pytest.raises(ValueError, match="shard window"):
                ShardSpec(cell, lo, hi)


class TestSweepSpec:
    def test_shards_partition_each_cell(self):
        spec = SweepSpec((fleet_cell(trials=70), reference_cell(trials=10)), 32)
        shards = spec.shards()
        windows = [(s.lo, s.hi) for s in shards if s.cell.engine == "fleet"]
        assert windows == [(0, 32), (32, 64), (64, 70)]
        windows = [(s.lo, s.hi) for s in shards if s.cell.engine == "reference"]
        assert windows == [(0, 10)]

    def test_rejects_empty_and_bad_width(self):
        with pytest.raises(ValueError, match="at least one cell"):
            SweepSpec(())
        with pytest.raises(ValueError, match="shard_trials"):
            SweepSpec((fleet_cell(),), shard_trials=0)

    def test_round_trips_through_dict(self):
        spec = SweepSpec((fleet_cell(), reference_cell()), shard_trials=8)
        assert SweepSpec.from_dict(spec.to_dict()) == spec


class TestCanonicalJson:
    def test_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [2, 3]}) == '{"a":[2,3],"b":1}'
