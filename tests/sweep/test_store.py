"""Tests for the content-addressed result store."""

import json

import pytest

from repro.experiments.runner import TrialOutcome
from repro.sweep.spec import CellSpec, ShardSpec
from repro.sweep.store import STORE_FORMAT_VERSION, ResultStore


def shard(trials=4, lo=0, hi=4, **overrides):
    base = dict(
        algorithm="feedback",
        engine="reference",
        family="gnp",
        n=20,
        edge_probability=0.3,
        trials=trials,
        master_seed=11,
    )
    base.update(overrides)
    return ShardSpec(CellSpec(**base), lo, hi)


def rows_for(spec):
    return [
        TrialOutcome(
            trial=t,
            rounds=5 + t,
            mis_size=7,
            mean_beeps_per_node=1.25,
            messages=40,
            bits=40,
        )
        for t in range(spec.lo, spec.hi)
    ]


class TestPutGet:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = shard()
        rows = rows_for(spec)
        store.put(spec, rows, elapsed_seconds=0.5)
        assert store.get(spec) == rows

    def test_miss_on_empty_store(self, tmp_path):
        assert ResultStore(tmp_path).get(shard()) is None

    def test_rows_are_jsonl_under_hash_path(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = shard()
        store.put(spec, rows_for(spec))
        path = store.rows_path(spec)
        digest = spec.content_hash()
        assert path.parent.name == digest[:2]
        assert path.name == f"{digest}.jsonl"
        lines = path.read_text().splitlines()
        assert len(lines) == spec.trials
        assert json.loads(lines[0])["trial"] == 0

    def test_put_rejects_wrong_row_count(self, tmp_path):
        spec = shard()
        with pytest.raises(ValueError, match="4 trials"):
            ResultStore(tmp_path).put(spec, rows_for(spec)[:-1])

    def test_no_temp_files_left_behind(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = shard()
        store.put(spec, rows_for(spec))
        leftovers = [p for p in tmp_path.rglob("*") if p.name.startswith(".tmp-")]
        assert leftovers == []


class TestChurnRows:
    """Repair columns round-trip, and fault-free rows stay byte-stable."""

    def churn_rows(self, spec):
        return [
            TrialOutcome(
                trial=t,
                rounds=9 + t,
                mis_size=6,
                mean_beeps_per_node=1.0,
                messages=30,
                bits=30,
                repair_rounds=(0, 2, -1),
                recovered=False,
            )
            for t in range(spec.lo, spec.hi)
        ]

    def test_repair_columns_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = shard()
        rows = self.churn_rows(spec)
        store.put(spec, rows)
        loaded = store.get(spec)
        assert loaded == rows
        assert loaded[0].repair_rounds == (0, 2, -1)
        assert loaded[0].recovered is False

    def test_fault_free_rows_serialize_without_repair_fields(self, tmp_path):
        """Pre-churn stored bytes must not change: default repair fields
        stay off disk entirely."""
        store = ResultStore(tmp_path)
        spec = shard()
        store.put(spec, rows_for(spec))
        first = json.loads(store.rows_path(spec).read_text().splitlines()[0])
        assert "repair_rounds" not in first
        assert "recovered" not in first

    def test_rows_missing_repair_fields_default(self, tmp_path):
        """v2-era row files (no repair columns) still load, with the
        fault-free defaults."""
        loaded_rows = rows_for(shard())
        assert loaded_rows[0].repair_rounds == ()
        assert loaded_rows[0].recovered is True
        store = ResultStore(tmp_path)
        spec = shard()
        store.put(spec, loaded_rows)
        assert store.get(spec) == loaded_rows


class TestRepairAggregation:
    def test_repair_quantity_means_resolved_entries(self):
        from repro.sweep.aggregate import outcome_value

        row = TrialOutcome(
            trial=0, rounds=9, mis_size=6, mean_beeps_per_node=1.0,
            messages=0, bits=0, repair_rounds=(0, 4, -1), recovered=False,
        )
        assert outcome_value(row, "repair") == pytest.approx(2.0)
        assert outcome_value(row, "recovered") == 0.0

    def test_repair_quantity_without_churn_is_zero(self):
        from repro.sweep.aggregate import outcome_value

        row = TrialOutcome(
            trial=0, rounds=9, mis_size=6, mean_beeps_per_node=1.0,
            messages=0, bits=0,
        )
        assert outcome_value(row, "repair") == 0.0
        assert outcome_value(row, "recovered") == 1.0


class TestManifest:
    def test_provenance_fields(self, tmp_path):
        from repro import __version__

        store = ResultStore(tmp_path)
        spec = shard()
        store.put(spec, rows_for(spec), elapsed_seconds=1.5)
        manifest = store.manifest(spec)
        assert manifest is not None
        assert manifest.content_hash == spec.content_hash()
        assert manifest.store_format == STORE_FORMAT_VERSION
        assert manifest.code_version == __version__
        assert manifest.rows == spec.trials
        assert manifest.elapsed_seconds == 1.5
        assert manifest.created > 0
        assert ShardSpec.from_dict(manifest.shard) == spec

    def test_unknown_store_format_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = shard()
        store.put(spec, rows_for(spec))
        path = store.manifest_path(spec)
        payload = json.loads(path.read_text())
        payload["store_format"] = STORE_FORMAT_VERSION + 1
        path.write_text(json.dumps(payload))
        assert store.manifest(spec) is None
        assert store.get(spec) is None


class TestCorruption:
    """Anything inconsistent on disk is a miss, never an exception."""

    def test_truncated_rows_file(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = shard()
        store.put(spec, rows_for(spec))
        path = store.rows_path(spec)
        path.write_text("".join(path.read_text().splitlines(True)[:-1]))
        assert store.get(spec) is None

    def test_garbage_rows_file(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = shard()
        store.put(spec, rows_for(spec))
        store.rows_path(spec).write_text("not json\n" * spec.trials)
        assert store.get(spec) is None

    def test_garbage_manifest(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = shard()
        store.put(spec, rows_for(spec))
        store.manifest_path(spec).write_text("{broken")
        assert store.get(spec) is None

    def test_missing_rows_with_manifest(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = shard()
        store.put(spec, rows_for(spec))
        store.rows_path(spec).unlink()
        assert store.get(spec) is None


class TestGetOrRun:
    def test_runs_once_then_serves_from_disk(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = shard()
        calls = []

        def runner(s):
            calls.append(s)
            return rows_for(s)

        rows, cached = store.get_or_run(spec, runner)
        assert not cached and rows == rows_for(spec)
        rows, cached = store.get_or_run(spec, runner)
        assert cached and rows == rows_for(spec)
        assert len(calls) == 1

    def test_distinct_shards_do_not_collide(self, tmp_path):
        store = ResultStore(tmp_path)
        first = shard(trials=8, lo=0, hi=4)
        second = shard(trials=8, lo=4, hi=8)
        store.put(first, rows_for(first))
        assert store.get(second) is None
        store.put(second, rows_for(second))
        assert store.get(first) == rows_for(first)
        assert store.get(second) == rows_for(second)
