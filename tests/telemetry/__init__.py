"""Tests of the telemetry fabric (probes, ledger, stats)."""
