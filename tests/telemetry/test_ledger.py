"""The per-run JSONL ledger: round-trips, damage tolerance, summaries."""

from __future__ import annotations

import json

import pytest

from repro.telemetry import probes
from repro.telemetry.ledger import (
    LEDGER_FORMAT_VERSION,
    RunLedger,
    read_events,
    record_run,
    summarize_run,
)
from repro.telemetry.stats import ledger_paths


class TestRunLedger:
    def test_header_and_end_round_trip(self, tmp_path):
        ledger = RunLedger(tmp_path, "sweep", argv=["--trials", "8"])
        ledger.write({"event": "counter", "name": "x", "value": 1})
        ledger.close(status="ok", phases={"sweep.shard": 1.5})
        events = read_events(ledger.path)
        assert [e["event"] for e in events] == ["run", "counter", "end"]
        header, _, end = events
        assert header["ledger_format"] == LEDGER_FORMAT_VERSION
        assert header["command"] == "sweep"
        assert header["argv"] == ["--trials", "8"]
        assert set(header["versions"]) == {"repro", "python", "numpy"}
        assert end["status"] == "ok"
        assert end["phases"] == {"sweep.shard": 1.5}
        assert end["elapsed_seconds"] >= 0.0

    def test_close_is_idempotent(self, tmp_path):
        ledger = RunLedger(tmp_path, "run")
        ledger.close()
        ledger.close()
        assert sum(
            1 for e in read_events(ledger.path) if e["event"] == "end"
        ) == 1

    def test_run_ids_sort_chronologically(self, tmp_path):
        first = RunLedger(tmp_path, "a")
        first.close()
        second = RunLedger(tmp_path, "b")
        second.close()
        assert ledger_paths(tmp_path) == [first.path, second.path]


class TestRecordRun:
    def test_probes_stream_into_the_ledger(self, tmp_path):
        with record_run(tmp_path, "sweep", ["--seed", "7"]):
            probes.count("sweep.cache.hit", 3)
            probes.span_event("sweep.shard", 0.25, content_hash="ab" * 32)
        (path,) = ledger_paths(tmp_path)
        summary = summarize_run(path)
        assert summary.command == "sweep"
        assert summary.status == "ok"
        assert summary.counters["sweep.cache.hit"] == 3.0
        assert summary.phases == {"sweep.shard": 0.25}
        assert summary.spec_hashes == ["ab" * 32]
        assert not probes.enabled()

    def test_error_status_on_exception(self, tmp_path):
        with pytest.raises(RuntimeError):
            with record_run(tmp_path, "sweep"):
                probes.count("sweep.cache.miss")
                raise RuntimeError("boom")
        (path,) = ledger_paths(tmp_path)
        summary = summarize_run(path)
        assert summary.status == "error"
        assert summary.counters["sweep.cache.miss"] == 1.0
        assert not probes.enabled()


class TestDamageTolerance:
    """Like the result store, readers treat damage as data loss."""

    def test_truncated_tail_line_is_skipped(self, tmp_path):
        ledger = RunLedger(tmp_path, "sweep")
        ledger.write({"event": "counter", "name": "x", "value": 2})
        ledger.close()
        # Simulate a torn write: a half-finished JSON line at the tail.
        with ledger.path.open("a", encoding="utf-8") as handle:
            handle.write('{"event":"counter","na')
        events = read_events(ledger.path)
        assert [e["event"] for e in events] == ["run", "counter", "end"]

    def test_corrupt_middle_line_loses_itself_not_the_run(self, tmp_path):
        ledger = RunLedger(tmp_path, "sweep")
        ledger.close()
        lines = ledger.path.read_text(encoding="utf-8").splitlines()
        lines.insert(1, "not json at all")
        lines.insert(2, json.dumps(["parseable", "but", "not", "an", "event"]))
        ledger.path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        summary = summarize_run(ledger.path)
        assert summary.status == "ok"

    def test_crashed_run_reads_as_incomplete(self, tmp_path):
        ledger = RunLedger(tmp_path, "sweep")
        ledger.write({"event": "counter", "name": "x", "value": 1})
        # No close(): the writer died.  The ledger is still readable.
        summary = summarize_run(ledger.path)
        assert summary.status == "incomplete"
        assert summary.counters == {"x": 1.0}
        ledger.close()

    def test_missing_file_reads_as_empty(self, tmp_path):
        assert read_events(tmp_path / "run-nope.jsonl") == []

    def test_malformed_event_fields_lose_the_line_only(self, tmp_path):
        ledger = RunLedger(tmp_path, "sweep")
        ledger.write({"event": "counter", "name": "good", "value": 1})
        ledger.write({"event": "counter"})  # no name/value
        ledger.write({"event": "gauge", "name": "g", "value": "NaN-ish"})
        ledger.close()
        summary = summarize_run(ledger.path)
        assert summary.counters == {"good": 1.0}
        assert summary.status == "ok"
