"""The probe API: no-ops when disabled, structured events when enabled."""

from __future__ import annotations

import pytest

from repro.telemetry import probes
from repro.telemetry.probes import Collector, capture


class TestDisabled:
    """With no collector installed every probe is inert."""

    def test_disabled_by_default(self):
        assert not probes.enabled()
        assert probes.collector() is None

    def test_disabled_probes_return_nothing(self):
        assert probes.count("x") is None
        assert probes.count("x", 17, key="v") is None
        assert probes.gauge("g", 0.5) is None
        assert probes.annotate("note", msg="hi") is None
        assert probes.span_event("s", 1.0) is None

    def test_disabled_span_is_the_shared_null_singleton(self):
        # One shared no-op object: the disabled path allocates nothing.
        assert probes.span("a") is probes.span("b", attr=1)
        with probes.span("a"):
            pass

    def test_disabled_span_does_not_swallow_exceptions(self):
        with pytest.raises(RuntimeError):
            with probes.span("a"):
                raise RuntimeError("boom")


class TestCollector:
    def test_counters_accumulate(self):
        c = Collector()
        with capture(c):
            probes.count("hits")
            probes.count("hits", 4)
            probes.count("bytes", 100)
        assert c.counters == {"hits": 5.0, "bytes": 100.0}

    def test_gauges_keep_the_last_value(self):
        c = Collector()
        with capture(c):
            probes.gauge("fraction", 0.25)
            probes.gauge("fraction", 0.75)
        assert c.gauges == {"fraction": 0.75}

    def test_spans_aggregate_count_total_max(self):
        c = Collector()
        with capture(c):
            probes.span_event("phase", 1.0)
            probes.span_event("phase", 3.0)
        count, total, worst = c.spans["phase"]
        assert (count, total, worst) == (2, 4.0, 3.0)
        assert c.span_totals() == {"phase": 4.0}

    def test_live_span_measures_time_and_emits_on_exit(self):
        events = []
        c = Collector()
        c.add_sink(events.append)
        with capture(c):
            with probes.span("work", shard=3):
                pass
        (event,) = events
        assert event["event"] == "span"
        assert event["name"] == "work"
        assert event["seconds"] >= 0.0
        assert event["attrs"] == {"shard": 3}

    def test_sinks_receive_every_event_in_order(self):
        events = []
        c = Collector(sinks=(events.append,))
        with capture(c):
            probes.count("a")
            probes.gauge("b", 1.0)
            probes.annotate("c", hash="ff")
        assert [e["event"] for e in events] == [
            "counter", "gauge", "annotation"
        ]
        assert events[2]["attrs"] == {"hash": "ff"}


class TestCapture:
    def test_capture_installs_and_restores(self):
        with capture() as active:
            assert probes.enabled()
            assert probes.collector() is active
        assert not probes.enabled()

    def test_capture_restores_on_error(self):
        with pytest.raises(ValueError):
            with capture():
                raise ValueError("boom")
        assert not probes.enabled()

    def test_nested_captures_stack(self):
        outer = Collector()
        inner = Collector()
        with capture(outer):
            probes.count("depth")
            with capture(inner):
                probes.count("depth")
            probes.count("depth")
        assert outer.counters == {"depth": 2.0}
        assert inner.counters == {"depth": 1.0}
