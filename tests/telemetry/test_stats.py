"""The ``repro stats`` engine: run tables, drill-downs, bench drift."""

from __future__ import annotations

import json

import pytest

from repro.telemetry import probes
from repro.telemetry.ledger import record_run
from repro.telemetry.stats import (
    BenchDrift,
    bench_drift,
    format_stats,
    load_runs,
    run_detail,
    runs_table,
    stats_payload,
)


def _record_sweep(root, hits: int, misses: int) -> None:
    with record_run(root, "sweep", ["--trials", "8"]):
        if hits:
            probes.count("sweep.cache.hit", hits)
        for index in range(misses):
            probes.count("sweep.cache.miss")
            probes.span_event(
                "sweep.shard",
                0.1 * (index + 1),
                algorithm="feedback",
                n=50,
                lo=index * 4,
                hi=(index + 1) * 4,
                cached=False,
                content_hash=f"{index:02x}" * 32,
            )


def _write_bench(directory, name: str, speedup, floor) -> None:
    results = {} if speedup is None else {"speedup": speedup}
    payload = {"bench": name, "results": results, "floor": floor}
    (directory / f"BENCH_{name}.json").write_text(
        json.dumps(payload), encoding="utf-8"
    )


class TestRunsTable:
    def test_hit_rate_and_shard_counts_per_run(self, tmp_path):
        _record_sweep(tmp_path, hits=0, misses=4)
        _record_sweep(tmp_path, hits=4, misses=0)
        runs = load_runs(tmp_path)
        assert [run.cache_hit_rate for run in runs] == [0.0, 1.0]
        table = runs_table(runs)
        assert "hit-rate" in table
        assert "100%" in table
        assert "sweep" in table

    def test_runs_without_sweeps_have_no_hit_rate(self, tmp_path):
        with record_run(tmp_path, "color"):
            probes.count("engine.dense.runs")
        (run,) = load_runs(tmp_path)
        assert run.cache_hit_rate is None
        assert "-" in runs_table([run])


class TestRunDetail:
    def test_slowest_shards_ranked_and_hashed(self, tmp_path):
        _record_sweep(tmp_path, hits=1, misses=3)
        (run,) = load_runs(tmp_path)
        shards = run.slowest_shards(2)
        assert [shard["seconds"] for shard in shards] == pytest.approx(
            [0.3, 0.2]
        )
        detail = run_detail(run, slowest=2)
        assert "slowest shards" in detail
        assert "feedback" in detail
        assert "sweep.cache.hit" in detail

    def test_cached_shards_never_rank_as_slowest(self, tmp_path):
        with record_run(tmp_path, "sweep"):
            probes.span_event(
                "sweep.shard", 99.0, cached=True, content_hash="aa" * 32
            )
            probes.span_event(
                "sweep.shard", 0.5, cached=False, content_hash="bb" * 32
            )
        (run,) = load_runs(tmp_path)
        assert [s["seconds"] for s in run.slowest_shards(5)] == [0.5]
        # Both hashes are still tied to the run, though.
        assert run.spec_hashes == ["aa" * 32, "bb" * 32]

    def test_failed_shards_surface_in_summary_and_detail(self, tmp_path):
        """A sweep.shard.failed annotation (the orchestrator's exhausted-
        retries report) lands in the run summary, the drill-down text,
        and the --json payload."""
        with record_run(tmp_path, "sweep"):
            probes.count("sweep.shard.retry", 2)
            probes.count("sweep.shard.failed")
            probes.annotate(
                "sweep.shard.failed",
                algorithm="feedback",
                n=50,
                lo=4,
                hi=8,
                content_hash="cc" * 32,
                error="RuntimeError: worker crashed",
            )
        (run,) = load_runs(tmp_path)
        assert len(run.failed_shards) == 1
        failed = run.failed_shards[0]
        assert failed["lo"] == 4
        assert failed["error"] == "RuntimeError: worker crashed"
        detail = run_detail(run)
        assert "failed shards (exhausted retries):" in detail
        assert "feedback[n=50 4:8] RuntimeError: worker crashed" in detail
        payload = stats_payload(tmp_path, bench_dir=tmp_path)
        assert payload["runs"][0]["failed_shards"] == [failed]


class TestBenchDrift:
    def test_headroom_is_speedup_over_floor(self, tmp_path):
        _write_bench(tmp_path, "fleet", speedup=6.0, floor=3.0)
        _write_bench(tmp_path, "rng", speedup=None, floor=2.0)
        rows = bench_drift(tmp_path)
        assert [row.name for row in rows] == ["fleet", "rng"]
        assert rows[0].headroom == pytest.approx(2.0)
        assert rows[1].headroom is None

    def test_unreadable_records_are_skipped(self, tmp_path):
        _write_bench(tmp_path, "good", speedup=4.0, floor=2.0)
        (tmp_path / "BENCH_bad.json").write_text("{torn", encoding="utf-8")
        assert [row.name for row in bench_drift(tmp_path)] == ["good"]

    def test_missing_directory_is_empty(self, tmp_path):
        assert bench_drift(tmp_path / "nope") == []

    def test_zero_floor_has_no_headroom(self):
        assert BenchDrift("x", speedup=2.0, floor=0.0).headroom is None


class TestStatsPayload:
    def test_json_document_shape(self, tmp_path):
        ledger = tmp_path / "ledger"
        _record_sweep(ledger, hits=2, misses=2)
        _write_bench(tmp_path, "fleet", speedup=6.0, floor=3.0)
        payload = stats_payload(ledger, bench_dir=tmp_path)
        # The whole document must be JSON-serialisable (--json mode).
        json.dumps(payload)
        (run,) = payload["runs"]
        assert run["cache_hits"] == 2.0
        assert run["cache_hit_rate"] == pytest.approx(0.5)
        assert payload["benches"][0]["headroom"] == pytest.approx(2.0)
        assert payload["run_detail"]["spec_hashes"]

    def test_run_selection_by_prefix(self, tmp_path):
        _record_sweep(tmp_path, hits=0, misses=1)
        _record_sweep(tmp_path, hits=1, misses=0)
        runs = load_runs(tmp_path)
        newest = stats_payload(tmp_path)["run_detail"]["run_id"]
        assert newest == runs[-1].run_id
        chosen = stats_payload(tmp_path, run_id=runs[0].run_id[:8])
        assert chosen["run_detail"]["run_id"] == runs[0].run_id

    def test_unknown_run_id_raises(self, tmp_path):
        _record_sweep(tmp_path, hits=0, misses=1)
        with pytest.raises(SystemExit, match="no ledger run"):
            stats_payload(tmp_path, run_id="zzzz")


class TestFormatStats:
    def test_empty_ledger_directory(self, tmp_path):
        report = format_stats(tmp_path, bench_dir=tmp_path)
        assert "no ledger runs" in report

    def test_full_report_sections(self, tmp_path):
        ledger = tmp_path / "ledger"
        _record_sweep(ledger, hits=1, misses=2)
        _write_bench(tmp_path, "fleet", speedup=6.0, floor=3.0)
        report = format_stats(ledger, bench_dir=tmp_path)
        assert "ledger:" in report
        assert "slowest shards" in report
        assert "bench floors" in report
        assert "6.00x" in report


def _rundb_with_records(root):
    from repro.sweep.rundb import RunDB, RunRecord

    db = RunDB(root)
    db.append(
        RunRecord(
            run_id="run-a", experiment="figure3", spec_hash="a" * 64,
            trials=3, shards_total=6, shards_executed=6, shards_cached=0,
            drift="MISSING",
        )
    )
    db.append(
        RunRecord(
            run_id="run-b", experiment="figure3", spec_hash="a" * 64,
            trials=3, shards_total=6, shards_executed=0, shards_cached=6,
            drift="PASS",
        )
    )
    return db


class TestRunDBSection:
    def test_format_stats_lists_paper_runs(self, tmp_path):
        _rundb_with_records(tmp_path / "db")
        report = format_stats(None, bench_dir=tmp_path,
                              rundb_dir=tmp_path / "db")
        assert "paper runs" in report
        assert "figure3" in report
        assert "PASS" in report and "MISSING" in report
        assert "100%" in report  # the warm run's hit-rate

    def test_rundb_only_query_skips_ledger_sections(self, tmp_path):
        _rundb_with_records(tmp_path / "db")
        report = format_stats(None, bench_dir=tmp_path,
                              rundb_dir=tmp_path / "db")
        assert "no ledger runs" not in report
        assert "ledger:" not in report

    def test_empty_rundb_reports_no_runs(self, tmp_path):
        report = format_stats(None, bench_dir=tmp_path,
                              rundb_dir=tmp_path / "empty")
        assert "no paper runs" in report

    def test_payload_carries_records_and_index(self, tmp_path):
        _rundb_with_records(tmp_path / "db")
        payload = stats_payload(None, bench_dir=tmp_path,
                                rundb_dir=tmp_path / "db")
        json.dumps(payload)  # --json mode must serialise
        assert payload["ledger"] is None
        assert [r["drift"] for r in payload["paper_runs"]] == [
            "MISSING", "PASS"
        ]
        assert payload["paper_index"]["experiments"]["figure3"][
            "last_drift"
        ] == "PASS"

    def test_ledger_and_rundb_combine(self, tmp_path):
        ledger = tmp_path / "ledger"
        _record_sweep(ledger, hits=1, misses=1)
        _rundb_with_records(tmp_path / "db")
        report = format_stats(ledger, bench_dir=tmp_path,
                              rundb_dir=tmp_path / "db")
        assert "ledger:" in report
        assert "paper runs" in report
