"""Telemetry is out of band: probes on or off, results are bit-identical.

The hard contract of the telemetry fabric: probes never draw randomness,
never touch engine state and never change control flow, so every engine
produces byte-for-byte the same runs whether a collector is installed or
not.  Each test runs the same workload plain and under
:func:`~repro.telemetry.probes.capture` and compares exact outputs —
including against the checked-in golden trace, which predates telemetry.
"""

from __future__ import annotations

from random import Random

import numpy as np

from repro.beeping.rng import derive_seed, derive_seed_block
from repro.engine.applications import ApplicationFleetSimulator, ColoringRule
from repro.engine.fleet import ArmadaSimulator, FleetSimulator
from repro.engine.messages import LubyPermutationRule, MessageFleetSimulator
from repro.engine.rules import FeedbackRule
from repro.engine.simulator import VectorizedSimulator
from repro.engine.sparse import SparseSimulator
from repro.graphs.random_graphs import gnp_random_graph
from repro.telemetry.probes import capture
from tests.engine.test_golden_trace import (
    GOLDEN_BEEPS,
    GOLDEN_MIS,
    GOLDEN_ROUNDS,
    _golden_run,
)

MASTER_SEED = 0x7E1E


def _graph(n: int = 24, seed: int = 91) -> object:
    return gnp_random_graph(n, 0.3, Random(seed))


def _paired(run_once):
    """Run a workload plain, then probed; return both plus the collector.

    The probed run must actually have *hit* probes (non-empty counters),
    otherwise this suite would pass vacuously if the wiring fell out.
    """
    plain = run_once()
    with capture() as collector:
        probed = run_once()
    assert collector.counters, "no probes fired — telemetry unplugged?"
    return plain, probed


def _assert_engine_runs_equal(plain, probed):
    assert plain.rounds == probed.rounds
    assert plain.mis == probed.mis
    assert np.array_equal(plain.beeps_by_node, probed.beeps_by_node)
    assert plain.crashed == probed.crashed


def _assert_fleet_runs_equal(plain, probed):
    assert np.array_equal(plain.rounds, probed.rounds)
    assert np.array_equal(plain.membership, probed.membership)
    assert np.array_equal(plain.beeps_by_node, probed.beeps_by_node)


class TestEnginesBitIdentical:
    def test_dense(self):
        graph = _graph()
        run_once = lambda: VectorizedSimulator(graph).run(
            FeedbackRule(), derive_seed(MASTER_SEED, 0), validate=True
        )
        _assert_engine_runs_equal(*_paired(run_once))

    def test_sparse(self):
        graph = _graph()
        run_once = lambda: SparseSimulator(graph).run(
            FeedbackRule(), derive_seed(MASTER_SEED, 1), validate=True
        )
        _assert_engine_runs_equal(*_paired(run_once))

    def test_fleet(self):
        graph = _graph()
        seeds = derive_seed_block(MASTER_SEED, 2, count=6)
        run_once = lambda: FleetSimulator(graph).run_fleet(
            FeedbackRule(), seeds, validate=True
        )
        _assert_fleet_runs_equal(*_paired(run_once))

    def test_armada(self):
        graphs = [_graph(seed=93 + g) for g in range(3)]
        seed_rows = [
            derive_seed_block(MASTER_SEED, 3, g, count=4) for g in range(3)
        ]
        run_once = lambda: ArmadaSimulator(graphs).run_armada(
            FeedbackRule(), seed_rows, validate=True
        )
        plain_runs, probed_runs = _paired(run_once)
        for plain, probed in zip(plain_runs, probed_runs):
            _assert_fleet_runs_equal(plain, probed)

    def test_messages(self):
        graph = _graph()
        seeds = derive_seed_block(MASTER_SEED, 4, count=5)
        run_once = lambda: MessageFleetSimulator(graph).run_fleet(
            LubyPermutationRule(), seeds, validate=True
        )
        plain, probed = _paired(run_once)
        assert np.array_equal(plain.rounds, probed.rounds)
        assert np.array_equal(plain.membership, probed.membership)
        assert np.array_equal(plain.messages, probed.messages)
        assert np.array_equal(plain.bits, probed.bits)

    def test_applications(self):
        graph = _graph(n=16)
        seeds = derive_seed_block(MASTER_SEED, 5, count=4)
        run_once = lambda: ApplicationFleetSimulator(
            graph, ColoringRule()
        ).run_fleet(seeds, validate=True)
        plain, probed = _paired(run_once)
        assert np.array_equal(plain.rounds, probed.rounds)
        assert np.array_equal(plain.layers, probed.layers)
        assert np.array_equal(plain.membership, probed.membership)


class TestGoldenTraceWithProbesEnabled:
    """The pre-telemetry golden trace holds with a collector installed."""

    def test_probed_run_matches_the_committed_trace(self):
        with capture() as collector:
            _graph_obj, run = _golden_run()
        assert run.rounds.tolist() == GOLDEN_ROUNDS
        assert [sorted(run.mis_set(t)) for t in range(2)] == GOLDEN_MIS
        assert run.beeps_by_node.tolist() == GOLDEN_BEEPS
        assert collector.counters["engine.fleet.runs"] == 1.0


class TestSweepBitIdentical:
    """run_sweep rows and cache bytes are identical probes on or off."""

    def _spec(self):
        from repro.sweep.spec import CellSpec, SweepSpec

        cells = (
            CellSpec(
                algorithm="feedback",
                engine="fleet",
                trials=6,
                graphs=1,
                master_seed=MASTER_SEED,
                family="gnp",
                n=20,
                edge_probability=0.4,
            ),
        )
        return SweepSpec(cells, shard_trials=3)

    def test_rows_identical_without_a_store(self):
        from repro.sweep.orchestrator import run_sweep

        spec = self._spec()
        plain = run_sweep(spec)
        with capture() as collector:
            probed = run_sweep(spec)
        assert collector.counters["sweep.cache.miss"] == 2.0
        (cell,) = spec.cells
        assert plain.rows(cell) == probed.rows(cell)

    def test_store_bytes_identical(self, tmp_path):
        from repro.sweep.orchestrator import run_sweep

        spec = self._spec()
        run_sweep(spec, store=tmp_path / "plain")
        with capture() as collector:
            run_sweep(spec, store=tmp_path / "probed")
        assert collector.counters["store.puts"] == 2.0

        def shard_files(root):
            return {
                path.relative_to(root): path.read_bytes()
                for path in sorted(root.rglob("*.jsonl"))
            }

        plain_files = shard_files(tmp_path / "plain")
        probed_files = shard_files(tmp_path / "probed")
        assert plain_files and plain_files == probed_files

    def test_warm_cache_rows_identical(self, tmp_path):
        from repro.sweep.orchestrator import run_sweep

        spec = self._spec()
        (cell,) = spec.cells
        cold = run_sweep(spec, store=tmp_path)
        with capture() as collector:
            warm = run_sweep(spec, store=tmp_path)
        assert collector.counters["sweep.cache.hit"] == 2.0
        assert collector.counters["store.hit"] == 2.0
        assert warm.report.shards_executed == 0
        assert cold.rows(cell) == warm.rows(cell)
