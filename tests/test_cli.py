"""End-to-end tests of the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_algorithms(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "feedback" in out
        assert "afek-sweep" in out


class TestRun:
    def test_random_graph_run(self, capsys):
        assert main(["run", "--nodes", "40", "--trials", "2", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "algorithm=feedback" in out
        assert "trial 0:" in out
        assert "trial 1:" in out

    def test_grid_run(self, capsys):
        assert main(["run", "--grid", "5", "--algorithm", "luby-permutation"]) == 0
        out = capsys.readouterr().out
        assert "5x5 grid" in out

    def test_all_algorithms_runnable(self, capsys):
        from repro.algorithms.registry import available_algorithms

        for name in available_algorithms():
            assert main(
                ["run", "--algorithm", name, "--nodes", "20"]
            ) == 0
        capsys.readouterr()

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--algorithm", "bogus"])


class TestSweep:
    def test_cold_then_warm_run(self, capsys, tmp_path):
        args = [
            "sweep",
            "--algorithms", "feedback",
            "--sizes", "16",
            "--trials", "4",
            "--cache-dir", str(tmp_path),
            "--csv",
        ]
        assert main(args) == 0
        out, err = capsys.readouterr()
        assert "series,x,mean,std,trials" in out
        # Under --csv stdout stays pure CSV; the shard report goes to stderr.
        assert "executed" not in out
        assert "executed=1" in err
        assert main(args) == 0
        warm, warm_err = capsys.readouterr()
        assert "executed=0" in warm_err
        assert "cached=1" in warm_err
        # identical CSV rows from the store
        assert warm == out

    def test_reference_engine_grid(self, capsys):
        assert main([
            "sweep",
            "--algorithms", "greedy",
            "--engine", "reference",
            "--family", "grid",
            "--sizes", "3",
            "--trials", "2",
            "--quantity", "mis-size",
            "--csv",
        ]) == 0
        out = capsys.readouterr().out
        assert out.startswith("series,x,mean,std,trials\ngreedy,9.0,")

    def test_jobs_flag_accepted_on_figures(self, capsys, tmp_path):
        assert main([
            "figure5",
            "--trials", "4",
            "--max-n", "20",
            "--csv",
            "--jobs", "2",
            "--cache-dir", str(tmp_path),
        ]) == 0
        assert "feedback" in capsys.readouterr().out


class TestRobustness:
    def test_cold_then_warm_fault_grid(self, capsys, tmp_path):
        args = [
            "robustness",
            "--nodes", "20",
            "--trials", "4",
            "--loss", "0.0", "0.2",
            "--spurious", "0.0", "0.1",
            "--crash", "1:3",
            "--cache-dir", str(tmp_path),
            "--csv",
        ]
        assert main(args) == 0
        out, err = capsys.readouterr()
        assert "series,x,mean,std,trials" in out
        assert "loss=0.2" in out
        assert "executed=4" in err
        # Warm rerun: the whole fault grid is served from the store.
        assert main(args) == 0
        warm, warm_err = capsys.readouterr()
        assert "executed=0" in warm_err
        assert warm == out

    def test_plot_output(self, capsys):
        assert main([
            "robustness",
            "--nodes", "16",
            "--trials", "3",
            "--loss", "0.0",
            "--spurious", "0.0", "0.2",
        ]) == 0
        out = capsys.readouterr().out
        assert "spurious probability" in out
        assert "legend:" in out

    def test_reference_engine_grid(self, capsys):
        assert main([
            "robustness",
            "--engine", "reference",
            "--nodes", "12",
            "--trials", "2",
            "--loss", "0.1",
            "--spurious", "0.0",
            "--csv",
        ]) == 0
        out = capsys.readouterr().out
        assert out.startswith("series,x,mean,std,trials\nloss=0.1,")

    def test_rejects_malformed_crash_entry(self):
        with pytest.raises(SystemExit):
            main(["robustness", "--crash", "nope"])

    def test_churn_grid_cold_then_warm(self, capsys, tmp_path):
        args = [
            "robustness",
            "--nodes", "16",
            "--trials", "4",
            "--loss", "0.0", "0.2",
            "--spurious", "0.0",
            "--churn", "leave:1:0", "sleep:2:3", "wake:4:3",
            "--cache-dir", str(tmp_path),
            "--csv",
        ]
        assert main(args) == 0
        out, err = capsys.readouterr()
        assert out.startswith("series,x,mean,std,trials,repair,recovered\n")
        assert "executed=" in err
        # Warm rerun: byte-identical CSV, zero shards executed.
        assert main(args) == 0
        warm, warm_err = capsys.readouterr()
        assert "executed=0" in warm_err
        assert warm == out

    def test_churn_table_mode_prints_repair_section(self, capsys):
        assert main([
            "robustness",
            "--nodes", "14",
            "--trials", "3",
            "--loss", "0.0",
            "--spurious", "0.0",
            "--churn", "leave:1:0", "join:2:14:0+3",
        ]) == 0
        out = capsys.readouterr().out
        assert "self-repair (mean rounds to re-quiescence" in out
        assert "recovered" in out

    def test_rejects_malformed_churn_entry(self):
        with pytest.raises(SystemExit, match="--churn"):
            main(["robustness", "--churn", "nope"])
        with pytest.raises(SystemExit, match="--churn"):
            main(["robustness", "--churn", "wake:2:1"])  # wake w/o sleep


class TestCompareChurn:
    def test_compare_reports_repair_columns(self, capsys):
        assert main([
            "compare",
            "--sizes", "12",
            "--trials", "2",
            "--churn", "leave:1:0",
            "--algorithms", "feedback", "luby-permutation",
        ]) == 0
        out = capsys.readouterr().out
        assert "repair" in out
        assert "recovered" in out

    def test_compare_rejects_churn_blind_algorithm(self):
        with pytest.raises(SystemExit, match="churn"):
            main([
                "compare",
                "--sizes", "12",
                "--trials", "2",
                "--churn", "leave:1:0",
                "--algorithms", "greedy",
            ])

    def test_compare_rejects_malformed_churn_entry(self):
        with pytest.raises(SystemExit, match="--churn"):
            main(["compare", "--churn", "leave:1"])


class TestFigures:
    def test_figure3_csv(self, capsys):
        assert main(
            ["figure3", "--trials", "4", "--max-n", "60", "--seed", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "legend:" in out

    def test_figure3_csv_mode(self, capsys):
        assert main(
            ["figure3", "--trials", "4", "--max-n", "60", "--csv"]
        ) == 0
        out = capsys.readouterr().out
        assert out.startswith("series,x,mean,std,trials")

    def test_figure5(self, capsys):
        assert main(
            ["figure5", "--trials", "6", "--max-n", "40"]
        ) == 0
        out = capsys.readouterr().out
        assert "feedback" in out

    def test_max_n_validation(self):
        with pytest.raises(SystemExit):
            main(["figure3", "--max-n", "5"])


class TestTheorem1:
    def test_runs(self, capsys):
        assert main(["theorem1", "--max-side", "5", "--trials", "4"]) == 0
        out = capsys.readouterr().out
        assert "afek-sweep" in out
        assert "feedback" in out


class TestBio:
    def test_lattice_report(self, capsys):
        assert main(["bio", "--rows", "5", "--cols", "5", "--t-end", "60"]) == 0
        out = capsys.readouterr().out
        assert "SOPs=" in out
        assert "pattern is an MIS" in out


class TestApplications:
    def test_sizes(self, capsys):
        assert main(["sizes", "--nodes", "22", "--trials", "4"]) == 0
        out = capsys.readouterr().out
        assert "optimum" in out
        assert "feedback" in out

    def test_color(self, capsys):
        assert main(["color", "--nodes", "25"]) == 0
        out = capsys.readouterr().out
        assert "proper colouring" in out

    def test_color_fleet_engine(self, capsys):
        assert main(
            ["color", "--nodes", "25", "--engine", "fleet", "--trials", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "proper colouring" in out
        assert "fleet batch" in out
        assert "trial 0" in out

    def test_match(self, capsys):
        assert main(["match", "--nodes", "25"]) == 0
        out = capsys.readouterr().out
        assert "maximal matching" in out

    def test_match_fleet_engine(self, capsys):
        assert main(
            ["match", "--nodes", "25", "--engine", "fleet", "--trials", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "maximal matching" in out
        assert "fleet batch" in out
        assert "trial 0" in out

    def test_wakeup(self, capsys):
        assert main(["wakeup", "--nodes", "30", "--max-delay", "5"]) == 0
        out = capsys.readouterr().out
        assert "staggered starts" in out

    def test_animate(self, capsys):
        assert main(["animate", "--nodes", "9"]) == 0
        out = capsys.readouterr().out
        assert "legend:" in out
        assert "MIS =" in out

    def test_report(self, capsys):
        assert main(["report", "--trials", "3"]) == 0
        out = capsys.readouterr().out
        assert "verdicts:" in out


class TestSeedDiscipline:
    def test_cli_streams_are_pairwise_distinct(self):
        """No (command, seed) pair may collide with any other.

        Regression: the algorithm RNGs used to be ``Random(args.seed + k)``
        with per-command offsets, so ``wakeup --seed 7`` and ``match
        --seed 8`` consumed the same ``Random(9)`` stream.  Routed
        through ``spawn_rng(seed, *path)``, every stream seed is a
        distinct splitmix derivation.
        """
        from repro.beeping.rng import derive_seed
        from repro.cli import CLI_ALGO_STREAMS

        seen = {}
        for seed in range(11):  # includes the historic 7/8 collision
            for command, path in CLI_ALGO_STREAMS.items():
                stream_seed = derive_seed(seed, *path)
                assert stream_seed not in seen, (
                    f"({command}, seed {seed}) collides with "
                    f"{seen[stream_seed]}"
                )
                seen[stream_seed] = (command, seed)

    def test_stream_paths_are_unique(self):
        from repro.cli import CLI_ALGO_STREAMS, CLI_GRAPH_STREAM

        paths = list(CLI_ALGO_STREAMS.values())
        assert len(set(paths)) == len(paths)
        assert (CLI_GRAPH_STREAM,) not in paths


class TestObservabilityFlags:
    """--telemetry/--verbose/--quiet behave the same on every subcommand."""

    SWEEP = [
        "sweep", "--algorithms", "feedback", "--sizes", "16",
        "--trials", "4", "--csv",
    ]

    def test_every_subcommand_accepts_the_trio(self):
        from repro.cli import _build_parser

        parser = _build_parser()
        subparsers = next(
            action for action in parser._actions
            if isinstance(action, __import__("argparse")._SubParsersAction)
        )
        for name, subparser in subparsers.choices.items():
            flags = {
                flag
                for action in subparser._actions
                for flag in action.option_strings
            }
            assert {"--telemetry", "--verbose", "--quiet"} <= flags, name

    def test_verbose_and_quiet_are_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            main(self.SWEEP + ["--verbose", "--quiet"])
        capsys.readouterr()

    def test_quiet_suppresses_the_summary_line(self, capsys, tmp_path):
        assert main(
            self.SWEEP + ["--cache-dir", str(tmp_path), "--quiet"]
        ) == 0
        out, err = capsys.readouterr()
        assert "series,x,mean,std,trials" in out
        assert "executed=" not in err

    def test_verbose_streams_shard_progress(self, capsys):
        assert main(self.SWEEP + ["--verbose"]) == 0
        _out, err = capsys.readouterr()
        assert "# shard 1/1 feedback[n=16 0:4]" in err
        assert "executed=1" in err

    def test_telemetry_records_a_ledger_run(self, capsys, tmp_path):
        from repro.telemetry import load_runs

        ledger = tmp_path / "ledger"
        assert main(self.SWEEP + ["--telemetry", str(ledger)]) == 0
        capsys.readouterr()
        (run,) = load_runs(ledger)
        assert run.command == "sweep"
        assert run.status == "ok"
        assert run.argv[0] == "sweep"
        assert run.counters["sweep.cache.miss"] == 1.0
        assert run.versions["repro"]
        assert run.spec_hashes

    def test_environment_variable_sets_the_ledger(
        self, capsys, tmp_path, monkeypatch
    ):
        from repro.telemetry import load_runs

        ledger = tmp_path / "env-ledger"
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(ledger))
        assert main(self.SWEEP) == 0
        capsys.readouterr()
        (run,) = load_runs(ledger)
        assert run.command == "sweep"

    def test_telemetry_leaves_output_bytes_unchanged(self, capsys, tmp_path):
        assert main(self.SWEEP) == 0
        plain = capsys.readouterr().out
        assert main(self.SWEEP + ["--telemetry", str(tmp_path / "l")]) == 0
        probed = capsys.readouterr().out
        assert plain == probed


class TestStats:
    SWEEP = [
        "sweep", "--algorithms", "feedback", "--sizes", "16",
        "--trials", "4", "--csv",
    ]

    def test_needs_a_ledger_directory(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY_DIR", raising=False)
        with pytest.raises(SystemExit, match="ledger"):
            main(["stats"])

    def test_reports_a_recorded_sweep(self, capsys, tmp_path):
        ledger = tmp_path / "ledger"
        cache = tmp_path / "cache"
        sweep = self.SWEEP + [
            "--cache-dir", str(cache), "--telemetry", str(ledger),
        ]
        assert main(sweep) == 0
        assert main(sweep) == 0  # warm rerun: 100% hit-rate
        capsys.readouterr()
        assert main(["stats", "--ledger", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "2 runs" in out
        assert "100%" in out
        assert "slowest shards" not in out or "feedback" in out

    def test_json_mode_is_machine_readable(self, capsys, tmp_path):
        import json

        ledger = tmp_path / "ledger"
        assert main(self.SWEEP + ["--telemetry", str(ledger)]) == 0
        capsys.readouterr()
        assert main(["stats", "--ledger", str(ledger), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        (run,) = payload["runs"]
        assert run["command"] == "sweep"
        assert payload["run_detail"]["spec_hashes"]

    def test_stats_itself_is_never_recorded(self, capsys, tmp_path):
        from repro.telemetry import load_runs

        ledger = tmp_path / "ledger"
        assert main(self.SWEEP + ["--telemetry", str(ledger)]) == 0
        capsys.readouterr()
        assert main(
            ["stats", "--ledger", str(ledger), "--telemetry", str(ledger)]
        ) == 0
        capsys.readouterr()
        assert len(load_runs(ledger)) == 1

    def test_bench_drift_section(self, capsys, tmp_path):
        import json

        ledger = tmp_path / "ledger"
        assert main(self.SWEEP + ["--telemetry", str(ledger)]) == 0
        (tmp_path / "BENCH_demo.json").write_text(
            json.dumps(
                {"bench": "demo", "results": {"speedup": 4.0}, "floor": 2.0}
            ),
            encoding="utf-8",
        )
        capsys.readouterr()
        assert main(
            ["stats", "--ledger", str(ledger), "--bench-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "bench floors" in out
        assert "4.00x" in out
        assert "2.00" in out
