"""End-to-end tests of the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_algorithms(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "feedback" in out
        assert "afek-sweep" in out


class TestRun:
    def test_random_graph_run(self, capsys):
        assert main(["run", "--nodes", "40", "--trials", "2", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "algorithm=feedback" in out
        assert "trial 0:" in out
        assert "trial 1:" in out

    def test_grid_run(self, capsys):
        assert main(["run", "--grid", "5", "--algorithm", "luby-permutation"]) == 0
        out = capsys.readouterr().out
        assert "5x5 grid" in out

    def test_all_algorithms_runnable(self, capsys):
        from repro.algorithms.registry import available_algorithms

        for name in available_algorithms():
            assert main(
                ["run", "--algorithm", name, "--nodes", "20"]
            ) == 0
        capsys.readouterr()

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--algorithm", "bogus"])


class TestSweep:
    def test_cold_then_warm_run(self, capsys, tmp_path):
        args = [
            "sweep",
            "--algorithms", "feedback",
            "--sizes", "16",
            "--trials", "4",
            "--cache-dir", str(tmp_path),
            "--csv",
        ]
        assert main(args) == 0
        out, err = capsys.readouterr()
        assert "series,x,mean,std,trials" in out
        # Under --csv stdout stays pure CSV; the shard report goes to stderr.
        assert "executed" not in out
        assert "executed=1" in err
        assert main(args) == 0
        warm, warm_err = capsys.readouterr()
        assert "executed=0" in warm_err
        assert "cached=1" in warm_err
        # identical CSV rows from the store
        assert warm == out

    def test_reference_engine_grid(self, capsys):
        assert main([
            "sweep",
            "--algorithms", "greedy",
            "--engine", "reference",
            "--family", "grid",
            "--sizes", "3",
            "--trials", "2",
            "--quantity", "mis-size",
            "--csv",
        ]) == 0
        out = capsys.readouterr().out
        assert out.startswith("series,x,mean,std,trials\ngreedy,9.0,")

    def test_jobs_flag_accepted_on_figures(self, capsys, tmp_path):
        assert main([
            "figure5",
            "--trials", "4",
            "--max-n", "20",
            "--csv",
            "--jobs", "2",
            "--cache-dir", str(tmp_path),
        ]) == 0
        assert "feedback" in capsys.readouterr().out


class TestRobustness:
    def test_cold_then_warm_fault_grid(self, capsys, tmp_path):
        args = [
            "robustness",
            "--nodes", "20",
            "--trials", "4",
            "--loss", "0.0", "0.2",
            "--spurious", "0.0", "0.1",
            "--crash", "1:3",
            "--cache-dir", str(tmp_path),
            "--csv",
        ]
        assert main(args) == 0
        out, err = capsys.readouterr()
        assert "series,x,mean,std,trials" in out
        assert "loss=0.2" in out
        assert "executed=4" in err
        # Warm rerun: the whole fault grid is served from the store.
        assert main(args) == 0
        warm, warm_err = capsys.readouterr()
        assert "executed=0" in warm_err
        assert warm == out

    def test_plot_output(self, capsys):
        assert main([
            "robustness",
            "--nodes", "16",
            "--trials", "3",
            "--loss", "0.0",
            "--spurious", "0.0", "0.2",
        ]) == 0
        out = capsys.readouterr().out
        assert "spurious probability" in out
        assert "legend:" in out

    def test_reference_engine_grid(self, capsys):
        assert main([
            "robustness",
            "--engine", "reference",
            "--nodes", "12",
            "--trials", "2",
            "--loss", "0.1",
            "--spurious", "0.0",
            "--csv",
        ]) == 0
        out = capsys.readouterr().out
        assert out.startswith("series,x,mean,std,trials\nloss=0.1,")

    def test_rejects_malformed_crash_entry(self):
        with pytest.raises(SystemExit):
            main(["robustness", "--crash", "nope"])


class TestFigures:
    def test_figure3_csv(self, capsys):
        assert main(
            ["figure3", "--trials", "4", "--max-n", "60", "--seed", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "legend:" in out

    def test_figure3_csv_mode(self, capsys):
        assert main(
            ["figure3", "--trials", "4", "--max-n", "60", "--csv"]
        ) == 0
        out = capsys.readouterr().out
        assert out.startswith("series,x,mean,std,trials")

    def test_figure5(self, capsys):
        assert main(
            ["figure5", "--trials", "6", "--max-n", "40"]
        ) == 0
        out = capsys.readouterr().out
        assert "feedback" in out

    def test_max_n_validation(self):
        with pytest.raises(SystemExit):
            main(["figure3", "--max-n", "5"])


class TestTheorem1:
    def test_runs(self, capsys):
        assert main(["theorem1", "--max-side", "5", "--trials", "4"]) == 0
        out = capsys.readouterr().out
        assert "afek-sweep" in out
        assert "feedback" in out


class TestBio:
    def test_lattice_report(self, capsys):
        assert main(["bio", "--rows", "5", "--cols", "5", "--t-end", "60"]) == 0
        out = capsys.readouterr().out
        assert "SOPs=" in out
        assert "pattern is an MIS" in out


class TestApplications:
    def test_sizes(self, capsys):
        assert main(["sizes", "--nodes", "22", "--trials", "4"]) == 0
        out = capsys.readouterr().out
        assert "optimum" in out
        assert "feedback" in out

    def test_color(self, capsys):
        assert main(["color", "--nodes", "25"]) == 0
        out = capsys.readouterr().out
        assert "proper colouring" in out

    def test_color_fleet_engine(self, capsys):
        assert main(
            ["color", "--nodes", "25", "--engine", "fleet", "--trials", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "proper colouring" in out
        assert "fleet batch" in out
        assert "trial 0" in out

    def test_match(self, capsys):
        assert main(["match", "--nodes", "25"]) == 0
        out = capsys.readouterr().out
        assert "maximal matching" in out

    def test_match_fleet_engine(self, capsys):
        assert main(
            ["match", "--nodes", "25", "--engine", "fleet", "--trials", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "maximal matching" in out
        assert "fleet batch" in out
        assert "trial 0" in out

    def test_wakeup(self, capsys):
        assert main(["wakeup", "--nodes", "30", "--max-delay", "5"]) == 0
        out = capsys.readouterr().out
        assert "staggered starts" in out

    def test_animate(self, capsys):
        assert main(["animate", "--nodes", "9"]) == 0
        out = capsys.readouterr().out
        assert "legend:" in out
        assert "MIS =" in out

    def test_report(self, capsys):
        assert main(["report", "--trials", "3"]) == 0
        out = capsys.readouterr().out
        assert "verdicts:" in out


class TestSeedDiscipline:
    def test_cli_streams_are_pairwise_distinct(self):
        """No (command, seed) pair may collide with any other.

        Regression: the algorithm RNGs used to be ``Random(args.seed + k)``
        with per-command offsets, so ``wakeup --seed 7`` and ``match
        --seed 8`` consumed the same ``Random(9)`` stream.  Routed
        through ``spawn_rng(seed, *path)``, every stream seed is a
        distinct splitmix derivation.
        """
        from repro.beeping.rng import derive_seed
        from repro.cli import CLI_ALGO_STREAMS

        seen = {}
        for seed in range(11):  # includes the historic 7/8 collision
            for command, path in CLI_ALGO_STREAMS.items():
                stream_seed = derive_seed(seed, *path)
                assert stream_seed not in seen, (
                    f"({command}, seed {seed}) collides with "
                    f"{seen[stream_seed]}"
                )
                seen[stream_seed] = (command, seed)

    def test_stream_paths_are_unique(self):
        from repro.cli import CLI_ALGO_STREAMS, CLI_GRAPH_STREAM

        paths = list(CLI_ALGO_STREAMS.values())
        assert len(set(paths)) == len(paths)
        assert (CLI_GRAPH_STREAM,) not in paths
