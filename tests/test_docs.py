"""Documentation link integrity.

Every relative markdown link in README.md and docs/*.md must point at a
file (or directory) that exists in the repository, so the docs cannot
silently rot as files move.  External links (with a URL scheme) and pure
in-page anchors are skipped — this is a structural check, not a crawler.
It doubles as the CI "docs link-check" step.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")]
)

_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")


def relative_links(markdown: str):
    """All relative link targets (scheme-less, non-anchor) in a document."""
    for target in _LINK.findall(markdown):
        if "://" in target or target.startswith(("mailto:", "#")):
            continue
        yield target.split("#", 1)[0]


def test_doc_files_present():
    names = {path.name for path in DOC_FILES}
    assert "README.md" in names
    assert "TUTORIAL.md" in names
    assert "robustness.md" in names
    assert "architecture.md" in names
    assert "perf.md" in names
    assert "algorithms.md" in names
    assert "sweep.md" in names
    assert "observability.md" in names
    assert "paper.md" in names


def test_docs_index_orders_the_docs():
    """docs/README.md is the reading-order index of the doc set."""
    index = (REPO_ROOT / "docs" / "README.md").read_text(encoding="utf-8")
    ordered = ["TUTORIAL.md", "architecture.md", "algorithms.md",
               "sweep.md", "robustness.md", "perf.md", "observability.md",
               "paper.md"]
    positions = [index.find(name) for name in ordered]
    assert all(p >= 0 for p in positions), (
        f"docs/README.md must link all of {ordered}"
    )
    assert positions == sorted(positions), (
        "docs/README.md must keep the reading order "
        "TUTORIAL -> architecture -> algorithms -> sweep -> robustness "
        "-> perf -> observability -> paper"
    )


def test_algorithm_gallery_covers_every_registry_algorithm():
    """Every registered algorithm appears in the docs/algorithms.md
    engine-coverage matrix (and therefore in the gallery)."""
    import sys

    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.algorithms.registry import available_algorithms
    finally:
        sys.path.pop(0)
    gallery = (REPO_ROOT / "docs" / "algorithms.md").read_text(
        encoding="utf-8"
    )
    matrix = gallery.split("## Engine coverage", 1)
    assert len(matrix) == 2, "algorithms.md needs an engine-coverage matrix"
    missing = [
        name
        for name in available_algorithms()
        if f"`{name}`" not in matrix[1]
    ]
    assert not missing, (
        f"docs/algorithms.md engine-coverage matrix misses: {missing}"
    )
    header = next(
        line for line in matrix[1].splitlines() if line.startswith("| algorithm")
    )
    for column in ("reference", "dense", "sparse", "fleet", "armada", "bitboard"):
        assert f"| {column} |" in header, (
            f"engine-coverage matrix lost its '{column}' column"
        )


@pytest.mark.parametrize(
    "doc", DOC_FILES, ids=[str(p.relative_to(REPO_ROOT)) for p in DOC_FILES]
)
def test_relative_links_resolve(doc):
    text = doc.read_text(encoding="utf-8")
    missing = [
        target
        for target in relative_links(text)
        if target and not (doc.parent / target).exists()
    ]
    assert not missing, (
        f"{doc.relative_to(REPO_ROOT)} has dangling links: {missing}"
    )
