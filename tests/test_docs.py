"""Documentation link integrity.

Every relative markdown link in README.md and docs/*.md must point at a
file (or directory) that exists in the repository, so the docs cannot
silently rot as files move.  External links (with a URL scheme) and pure
in-page anchors are skipped — this is a structural check, not a crawler.
It doubles as the CI "docs link-check" step.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")]
)

_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")


def relative_links(markdown: str):
    """All relative link targets (scheme-less, non-anchor) in a document."""
    for target in _LINK.findall(markdown):
        if "://" in target or target.startswith(("mailto:", "#")):
            continue
        yield target.split("#", 1)[0]


def test_doc_files_present():
    names = {path.name for path in DOC_FILES}
    assert "README.md" in names
    assert "TUTORIAL.md" in names
    assert "robustness.md" in names
    assert "architecture.md" in names
    assert "perf.md" in names


@pytest.mark.parametrize(
    "doc", DOC_FILES, ids=[str(p.relative_to(REPO_ROOT)) for p in DOC_FILES]
)
def test_relative_links_resolve(doc):
    text = doc.read_text(encoding="utf-8")
    missing = [
        target
        for target in relative_links(text)
        if target and not (doc.parent / target).exists()
    ]
    assert not missing, (
        f"{doc.relative_to(REPO_ROOT)} has dangling links: {missing}"
    )
