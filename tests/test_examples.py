"""Smoke tests: every example script must run to completion.

Each example is executed in-process (fast, keeps coverage) with argv
pinned so argparse-based examples see no pytest flags.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    assert len(EXAMPLES) >= 3
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_quickstart_reports_all_algorithms(capsys, monkeypatch):
    from repro.algorithms.registry import available_algorithms

    monkeypatch.setattr(sys, "argv", ["quickstart.py"])
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    for name in available_algorithms():
        assert name in out


def test_figure3_example_csv_mode(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["figure3.py", "--csv"])
    runpy.run_path(str(EXAMPLES_DIR / "figure3.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert out.startswith("series,x,mean,std,trials")
