"""End-to-end integration: the full pipeline in one test module.

Generate workloads → run every algorithm → validate → aggregate →
serialise → reload → analyse.  This is the "does the whole library hang
together" test, complementing the per-module suites.
"""

import io
import json
from random import Random

import pytest

from repro import (
    FeedbackMIS,
    available_algorithms,
    gnp_random_graph,
    make_algorithm,
)
from repro.analysis.regression import fit_log2
from repro.analysis.statistics import summarize
from repro.beeping.events import Trace
from repro.beeping.trace_io import read_trace, write_trace
from repro.experiments.records import (
    ExperimentResult,
    SeriesPoint,
    results_from_json,
    results_to_json,
)
from repro.experiments.workloads import available_workloads, make_workload
from repro.graphs.io import read_edge_list, write_edge_list


def test_full_pipeline(tmp_path):
    """Workload → runs → stats → records → JSON → fit."""
    sizes = (20, 40, 80)
    points = []
    for size_index, n in enumerate(sizes):
        rounds = []
        for trial in range(6):
            graph = gnp_random_graph(n, 0.5, Random(size_index * 100 + trial))
            run = FeedbackMIS().run(graph, Random(trial))
            run.verify()
            rounds.append(run.rounds)
        stats = summarize(rounds)
        points.append(
            SeriesPoint("feedback", float(n), stats.mean, stats.std, 6)
        )
    result = ExperimentResult("pipeline", points, master_seed=0)

    # Serialise and reload.
    path = tmp_path / "result.json"
    path.write_text(results_to_json(result))
    restored = results_from_json(path.read_text())
    assert restored.points == result.points

    # Analyse.
    fit = fit_log2(restored.xs("feedback"), restored.means("feedback"))
    assert 0.5 < fit.slope < 6.0


def test_graph_and_trace_round_trip_compose(tmp_path):
    """Persist a graph and its trace, reload both, re-verify the run."""
    graph = gnp_random_graph(30, 0.4, Random(1))
    trace = Trace(record_probabilities=True)
    from repro.beeping.scheduler import BeepingSimulation
    from repro.core.policy import ExponentFeedbackNode

    result = BeepingSimulation(
        graph, lambda v: ExponentFeedbackNode(), Random(2), trace=trace
    ).run()
    result.verify()

    graph_path = tmp_path / "graph.edges"
    trace_path = tmp_path / "trace.jsonl"
    write_edge_list(graph, graph_path)
    write_trace(trace, trace_path)

    graph_restored = read_edge_list(graph_path)
    trace_restored = read_trace(trace_path)
    assert graph_restored == graph
    joined = set()
    for event in trace_restored.rounds:
        joined |= event.joined
    assert joined == result.mis


def test_every_algorithm_on_every_workload_small():
    """The full compatibility matrix at tiny scale."""
    for workload in available_workloads():
        graph = make_workload(workload, 20, Random(3))
        for name in available_algorithms():
            run = make_algorithm(name).run(graph, Random(4))
            run.verify()


def test_registry_and_cli_agree(capsys):
    from repro.cli import main

    main(["list"])
    listed = capsys.readouterr().out.split()
    assert listed == available_algorithms()


def test_json_schema_stability():
    """The serialised record schema is part of the public contract."""
    result = ExperimentResult(
        "demo", [SeriesPoint("s", 1.0, 2.0, 0.5, 3)], master_seed=9
    )
    payload = json.loads(results_to_json(result))
    assert set(payload) == {
        "experiment",
        "master_seed",
        "parameters",
        "points",
    }
    assert set(payload["points"][0]) == {
        "series",
        "x",
        "mean",
        "std",
        "trials",
        "extra",
    }


def test_stream_io_equivalence():
    graph = gnp_random_graph(15, 0.3, Random(5))
    buffer = io.StringIO()
    write_edge_list(graph, buffer)
    buffer.seek(0)
    assert read_edge_list(buffer) == graph
