"""Package-level sanity: public API surface, version, doctests."""

import doctest
import importlib

import pytest

import repro

MODULES_WITH_DOCTESTS = [
    "repro.beeping.rng",
    "repro.algorithms.afek_sweep",
    "repro.algorithms.greedy",
    "repro.graphs.graph",
]


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_all_names_unique(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.graphs",
            "repro.beeping",
            "repro.core",
            "repro.algorithms",
            "repro.engine",
            "repro.bio",
            "repro.analysis",
            "repro.experiments",
            "repro.viz",
            "repro.cli",
        ],
    )
    def test_subpackages_importable_with_all(self, module_name):
        module = importlib.import_module(module_name)
        if hasattr(module, "__all__"):
            for name in module.__all__:
                assert hasattr(module, name), f"{module_name}.{name}"


@pytest.mark.parametrize("module_name", MODULES_WITH_DOCTESTS)
def test_doctests(module_name):
    module = importlib.import_module(module_name)
    failures, _tests = doctest.testmod(module)
    assert failures == 0


def test_package_quickstart():
    """The README quickstart must keep working."""
    from random import Random

    from repro import FeedbackMIS, gnp_random_graph, verify_mis

    graph = gnp_random_graph(50, 0.5, Random(1))
    run = FeedbackMIS().run(graph, Random(2))
    verify_mis(graph, run.mis)
    assert run.rounds >= 1
