"""The tutorial's code blocks must keep working.

Executes every fenced ``python`` block from docs/TUTORIAL.md in one shared
namespace (the tutorial is written to be read top to bottom).
"""

import re
from pathlib import Path

import pytest

TUTORIAL = Path(__file__).resolve().parent.parent / "docs" / "TUTORIAL.md"


def python_blocks():
    text = TUTORIAL.read_text(encoding="utf-8")
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_tutorial_exists_and_has_blocks():
    assert TUTORIAL.exists()
    assert len(python_blocks()) >= 6


def test_tutorial_blocks_execute():
    namespace = {}
    for index, block in enumerate(python_blocks()):
        # Strip the illustrative comment-only expected outputs; keep code.
        try:
            exec(compile(block, f"<tutorial block {index}>", "exec"), namespace)
        except Exception as error:  # pragma: no cover - diagnostic aid
            pytest.fail(f"tutorial block {index} failed: {error}\n{block}")
