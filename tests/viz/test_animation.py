"""Tests for the round-by-round trace animation."""

from random import Random

import pytest

from repro.beeping.events import Trace
from repro.beeping.scheduler import BeepingSimulation
from repro.core.policy import ExponentFeedbackNode
from repro.graphs.random_graphs import gnp_random_graph
from repro.viz.animation import render_animation, render_frame


@pytest.fixture(scope="module")
def traced():
    graph = gnp_random_graph(16, 0.3, Random(21))
    trace = Trace()
    result = BeepingSimulation(
        graph, lambda v: ExponentFeedbackNode(), Random(22), trace=trace
    ).run()
    return graph, trace, result


class TestRenderFrame:
    def test_header_counts_match_event(self, traced):
        _graph, trace, _result = traced
        event = trace.rounds[0]
        frame = render_frame(trace, 0, 16)
        assert f"beeps={len(event.beepers)}" in frame
        assert f"joins={len(event.joined)}" in frame

    def test_glyph_count(self, traced):
        _graph, trace, _result = traced
        frame = render_frame(trace, 0, 16, columns=4)
        body = frame.split("\n")[1:]
        assert len(body) == 4
        glyphs = [g for line in body for g in line.split(" ")]
        assert len(glyphs) == 16

    def test_out_of_range_round(self, traced):
        _graph, trace, _result = traced
        with pytest.raises(ValueError):
            render_frame(trace, trace.num_rounds, 16)

    def test_final_frame_shows_mis_membership(self, traced):
        _graph, trace, result = traced
        last = trace.num_rounds - 1
        frame = render_frame(trace, last, 16, columns=16)
        glyphs = frame.split("\n")[1].split(" ")
        for v in result.mis:
            assert glyphs[v] in ("#", "*")  # already-in or joining now


class TestRenderAnimation:
    def test_contains_all_frames(self, traced):
        _graph, trace, _result = traced
        text = render_animation(trace, 16)
        for t in range(trace.num_rounds):
            assert f"round {t}:" in text
        assert "legend:" in text

    def test_max_frames(self, traced):
        _graph, trace, _result = traced
        text = render_animation(trace, 16, max_frames=1)
        assert "round 0:" in text
        assert "round 1:" not in text
