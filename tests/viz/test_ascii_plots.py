"""Tests for the ASCII plotter."""

import pytest

from repro.experiments.records import ExperimentResult, SeriesPoint
from repro.viz.ascii_plots import AsciiPlot, plot_experiment, plot_series


class TestAsciiPlot:
    def test_renders_axes_and_legend(self):
        plot = AsciiPlot(x_label="n", y_label="rounds")
        plot.add_series("demo", [1, 2, 3], [10, 20, 30])
        text = plot.render()
        assert "legend: o=demo" in text
        assert "rounds" in text
        assert "n" in text
        assert "30" in text and "10" in text

    def test_multiple_series_distinct_glyphs(self):
        plot = AsciiPlot()
        plot.add_series("a", [0, 1], [0, 1])
        plot.add_series("b", [0, 1], [1, 0])
        text = plot.render()
        assert "o=a" in text
        assert "x=b" in text

    def test_empty_plot_rejected(self):
        with pytest.raises(ValueError, match="nothing to plot"):
            AsciiPlot().render()

    def test_mismatched_lengths_rejected(self):
        plot = AsciiPlot()
        with pytest.raises(ValueError):
            plot.add_series("a", [1, 2], [1])

    def test_tiny_canvas_rejected(self):
        with pytest.raises(ValueError):
            AsciiPlot(width=5, height=5)

    def test_constant_series_does_not_crash(self):
        plot = AsciiPlot()
        plot.add_series("flat", [1, 2, 3], [5, 5, 5])
        assert "flat" in plot.render()

    def test_single_point(self):
        plot = AsciiPlot()
        plot.add_series("dot", [1], [1])
        assert "o" in plot.render()


class TestConvenienceWrappers:
    def test_plot_series(self):
        text = plot_series({"s": ([1, 2], [3, 4])}, y_label="beeps")
        assert "s" in text and "beeps" in text

    def test_plot_experiment(self):
        result = ExperimentResult(
            experiment="demo",
            points=[
                SeriesPoint("a", 1.0, 2.0, 0.0, 1),
                SeriesPoint("a", 2.0, 4.0, 0.0, 1),
                SeriesPoint("b", 1.0, 1.0, 0.0, 1),
                SeriesPoint("b", 2.0, 2.0, 0.0, 1),
            ],
            master_seed=0,
        )
        text = plot_experiment(result)
        assert "o=a" in text
        assert "x=b" in text
