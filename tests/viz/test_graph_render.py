"""Tests for terminal graph rendering."""

from repro.graphs.graph import Graph
from repro.graphs.structured import grid_graph, path_graph
from repro.viz.graph_render import (
    render_adjacency,
    render_grid_mis,
    render_mis_listing,
)


class TestAdjacency:
    def test_edge_marks(self):
        g = Graph(3, [(0, 2)])
        text = render_adjacency(g)
        lines = text.split("\n")
        assert len(lines) == 4  # header + 3 rows
        assert "#" in lines[1]
        assert "#" in lines[3]

    def test_mis_marked(self):
        g = path_graph(3)
        text = render_adjacency(g, mis=[0, 2])
        assert "*0" in text.split("\n")[0]
        assert " 1" in text.split("\n")[0]


class TestGridRender:
    def test_marks_match_membership(self):
        text = render_grid_mis(2, 3, mis=[0, 4])
        rows = text.split("\n")
        assert rows[0] == "■ · ·"
        assert rows[1] == "· ■ ·"

    def test_full_and_empty(self):
        assert render_grid_mis(1, 2, mis=[0, 1]) == "■ ■"
        assert render_grid_mis(1, 2, mis=[]) == "· ·"


class TestListing:
    def test_roles(self):
        g = path_graph(3)
        text = render_mis_listing(g, [0, 2])
        lines = text.split("\n")
        assert "IN MIS" in lines[0]
        assert "covered by 0" in lines[1]
        assert "IN MIS" in lines[2]

    def test_uncovered_flagged(self):
        g = path_graph(3)
        text = render_mis_listing(g, [0])
        assert "UNCOVERED" in text

    def test_degrees_shown(self):
        g = grid_graph(2, 2)
        text = render_mis_listing(g, [0, 3])
        assert "deg=2" in text
