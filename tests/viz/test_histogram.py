"""Tests for ASCII histograms."""

import pytest

from repro.viz.histogram import ascii_histogram, bin_values


class TestBinValues:
    def test_counts_sum(self):
        values = [1, 2, 2, 3, 9, 10]
        bins = bin_values(values, 3)
        assert sum(count for _l, _h, count in bins) == 6
        assert len(bins) == 3

    def test_degenerate_single_value(self):
        bins = bin_values([5, 5, 5], 4)
        assert bins == [(5.0, 5.0, 3)]

    def test_maximum_included(self):
        bins = bin_values([0, 10], 2)
        assert bins[-1][2] == 1  # max lands in last bin, not beyond it

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bin_values([], 3)

    def test_bad_bins_rejected(self):
        with pytest.raises(ValueError):
            bin_values([1], 0)

    def test_bounds_cover_range(self):
        values = [1.0, 2.5, 7.0]
        bins = bin_values(values, 4)
        assert bins[0][0] == 1.0
        assert bins[-1][1] == pytest.approx(7.0)


class TestAsciiHistogram:
    def test_renders_bars_and_counts(self):
        text = ascii_histogram([1, 1, 1, 2], bins=2, width=8, label="x")
        assert "x histogram (n=4)" in text
        assert "###" in text
        lines = text.split("\n")
        assert len(lines) == 3

    def test_peak_bar_is_longest(self):
        text = ascii_histogram([1] * 10 + [5], bins=2, width=20)
        lines = text.split("\n")[1:]
        bars = [line.count("#") for line in lines]
        assert max(bars) == 20
